"""The :class:`TaskGraph` data structure.

A task graph is immutable once built. Adjacency is stored in CSR form (the
layout the mapping inner loops iterate over — contiguous neighbor/weight
slices per vertex, per the vectorization guidance for numeric Python) plus a
deduplicated undirected edge list for whole-graph metrics.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import TaskGraphError

__all__ = ["TaskGraph"]


class TaskGraph:
    """Weighted undirected task graph.

    Parameters
    ----------
    num_tasks:
        Number of compute objects ``n``.
    edges:
        Iterable of ``(a, b, bytes)`` triples. Duplicate ``(a, b)`` pairs (in
        either orientation) are merged by summing their byte counts —
        matching how a load-balancing database accumulates per-pair traffic.
    vertex_weights:
        Optional per-task computation load; defaults to 1.0 for every task.
    """

    def __init__(
        self,
        num_tasks: int,
        edges: Iterable[tuple[int, int, float]] = (),
        vertex_weights: Sequence[float] | None = None,
    ):
        if num_tasks < 1:
            raise TaskGraphError(f"task graph needs at least one task, got {num_tasks}")
        self._n = int(num_tasks)

        if vertex_weights is None:
            self._vertex_weights = np.ones(self._n, dtype=np.float64)
        else:
            self._vertex_weights = np.asarray(vertex_weights, dtype=np.float64).copy()
            if self._vertex_weights.shape != (self._n,):
                raise TaskGraphError(
                    f"vertex_weights must have shape ({self._n},), "
                    f"got {self._vertex_weights.shape}"
                )
            if (self._vertex_weights < 0).any():
                raise TaskGraphError("vertex weights must be non-negative")
        self._vertex_weights.flags.writeable = False

        # Accumulate undirected edges with canonical (min, max) keys.
        acc: dict[tuple[int, int], float] = {}
        for a, b, w in edges:
            a, b = int(a), int(b)
            if not (0 <= a < self._n and 0 <= b < self._n):
                raise TaskGraphError(f"edge ({a},{b}) references unknown task")
            if a == b:
                raise TaskGraphError(f"self-edge at task {a} (intra-task bytes are free)")
            w = float(w)
            if w < 0:
                raise TaskGraphError(f"edge ({a},{b}) has negative weight {w}")
            key = (a, b) if a < b else (b, a)
            acc[key] = acc.get(key, 0.0) + w

        m = len(acc)
        self._edge_u = np.empty(m, dtype=np.int64)
        self._edge_v = np.empty(m, dtype=np.int64)
        self._edge_w = np.empty(m, dtype=np.float64)
        for i, ((a, b), w) in enumerate(sorted(acc.items())):
            self._edge_u[i] = a
            self._edge_v[i] = b
            self._edge_w[i] = w
        self._finish_edges()

    @classmethod
    def from_arrays(
        cls,
        num_tasks: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        vertex_weights: Sequence[float] | None = None,
    ) -> "TaskGraph":
        """Vectorized constructor from parallel edge arrays.

        Produces exactly the graph ``TaskGraph(num_tasks, zip(u, v, w),
        vertex_weights)`` would: duplicate pairs (in either orientation)
        merge by summing in first-appearance order, and the stored edge list
        is sorted by canonical ``(min, max)`` key. The per-edge Python loop
        is replaced by a lexsort + reduceat, which is what makes repeated
        graph contraction affordable at 10^5+ edges.
        """
        if num_tasks < 1:
            raise TaskGraphError(f"task graph needs at least one task, got {num_tasks}")
        self = object.__new__(cls)
        self._n = int(num_tasks)

        if vertex_weights is None:
            self._vertex_weights = np.ones(self._n, dtype=np.float64)
        else:
            self._vertex_weights = np.asarray(vertex_weights, dtype=np.float64).copy()
            if self._vertex_weights.shape != (self._n,):
                raise TaskGraphError(
                    f"vertex_weights must have shape ({self._n},), "
                    f"got {self._vertex_weights.shape}"
                )
            if (self._vertex_weights < 0).any():
                raise TaskGraphError("vertex weights must be non-negative")
        self._vertex_weights.flags.writeable = False

        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if not (u.shape == v.shape == w.shape and u.ndim == 1):
            raise TaskGraphError(
                f"edge arrays must be 1-D and equal-length, got shapes "
                f"{u.shape}/{v.shape}/{w.shape}"
            )
        if len(u) == 0:
            self._edge_u = np.empty(0, dtype=np.int64)
            self._edge_v = np.empty(0, dtype=np.int64)
            self._edge_w = np.empty(0, dtype=np.float64)
            self._finish_edges()
            return self

        bad = (u < 0) | (u >= self._n) | (v < 0) | (v >= self._n)
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            raise TaskGraphError(
                f"edge ({u[i]},{v[i]}) references unknown task"
            )
        loops = u == v
        if loops.any():
            i = int(np.flatnonzero(loops)[0])
            raise TaskGraphError(
                f"self-edge at task {u[i]} (intra-task bytes are free)"
            )
        if (w < 0).any():
            i = int(np.flatnonzero(w < 0)[0])
            raise TaskGraphError(
                f"edge ({u[i]},{v[i]}) has negative weight {w[i]}"
            )

        a = np.minimum(u, v)
        b = np.maximum(u, v)
        # Stable lexsort keeps duplicates in input order, so reduceat sums
        # them left-to-right exactly like the dict accumulator in __init__.
        order = np.lexsort((b, a))
        a, b, wo = a[order], b[order], w[order]
        first = np.ones(len(a), dtype=bool)
        first[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
        starts = np.flatnonzero(first)
        self._edge_u = a[starts]
        self._edge_v = b[starts]
        self._edge_w = np.add.reduceat(wo, starts)
        self._finish_edges()
        return self

    def _finish_edges(self) -> None:
        """Freeze the canonical edge arrays and derive the CSR adjacency."""
        self._coords: np.ndarray | None = None
        for arr in (self._edge_u, self._edge_v, self._edge_w):
            arr.flags.writeable = False

        # CSR adjacency (each undirected edge appears in both rows).
        rows = np.concatenate([self._edge_u, self._edge_v])
        cols = np.concatenate([self._edge_v, self._edge_u])
        data = np.concatenate([self._edge_w, self._edge_w])
        csr = sp.csr_matrix((data, (rows, cols)), shape=(self._n, self._n))
        csr.sum_duplicates()
        self._indptr = csr.indptr.astype(np.int64)
        self._indices = csr.indices.astype(np.int64)
        self._weights = csr.data.astype(np.float64)
        for arr in (self._indptr, self._indices, self._weights):
            arr.flags.writeable = False

    # ---------------------------------------------------------------- digest
    def content_digest(self) -> str:
        """Stable sha256 hex digest of the graph's full content.

        Covers the task count, the canonical deduplicated edge arrays
        (sorted ``(min, max)`` keys with summed float64 weights — exactly
        what the CSR adjacency derives from), the vertex weights, and the
        coordinates when attached. Two graphs with equal structure hash
        equally regardless of how they were built (``__init__`` vs
        :meth:`from_arrays`, edge input order, duplicate merging), and the
        digest is identical across processes and platforms because every
        hashed array has a fixed dtype (int64/float64) and little-endian
        byte order. This is the graph half of the content-addressed mapping
        cache key (see :mod:`repro.service.cache`).
        """
        import hashlib

        h = hashlib.sha256()
        h.update(b"repro-taskgraph-digest-v1\x00")

        def _arr(tag: bytes, arr: np.ndarray) -> None:
            data = np.ascontiguousarray(arr)
            if data.dtype.byteorder == ">":  # big-endian hosts hash equally
                data = data.astype(data.dtype.newbyteorder("<"))
            h.update(tag)
            h.update(data.size.to_bytes(8, "little"))
            h.update(data.tobytes())

        h.update(self._n.to_bytes(8, "little"))
        _arr(b"eu", self._edge_u)
        _arr(b"ev", self._edge_v)
        _arr(b"ew", self._edge_w)
        _arr(b"vw", self._vertex_weights)
        if self._coords is not None:
            h.update(self._coords.shape[1].to_bytes(8, "little"))
            _arr(b"xy", self._coords)
        return h.hexdigest()

    # ----------------------------------------------------------------- sizes
    @property
    def num_tasks(self) -> int:
        """Number of compute objects ``n = |Vt|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected communication edges ``|Et|``."""
        return len(self._edge_w)

    def __len__(self) -> int:
        return self._n

    # ---------------------------------------------------------------- coords
    @property
    def coords(self) -> np.ndarray | None:
        """Per-task geometric coordinates, shape ``(n, k)``, or ``None``.

        Structured generators (:func:`~repro.taskgraph.patterns.mesh_pattern`)
        attach them; geometric mappers (the space-filling-curve mapper)
        require them. Read-only once attached.
        """
        return self._coords

    def attach_coords(self, coords) -> "TaskGraph":
        """Attach per-task coordinates (one row per task); returns ``self``.

        Coordinates are auxiliary metadata — they do not participate in
        equality or the edge structure — but mappers that order tasks
        geometrically (Deveci et al.'s SFC baselines) need them.
        """
        arr = np.asarray(coords, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2 or arr.shape[0] != self._n:
            raise TaskGraphError(
                f"coords must have one row per task ({self._n}), "
                f"got shape {arr.shape}"
            )
        arr = arr.copy()
        arr.flags.writeable = False
        self._coords = arr
        return self

    # --------------------------------------------------------------- weights
    @property
    def vertex_weights(self) -> np.ndarray:
        """Per-task computation load (read-only view)."""
        return self._vertex_weights

    @property
    def total_vertex_weight(self) -> float:
        """Sum of all computation loads."""
        return float(self._vertex_weights.sum())

    @property
    def total_bytes(self) -> float:
        """Total communication volume over all undirected edges."""
        return float(self._edge_w.sum())

    # ----------------------------------------------------------------- edges
    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deduplicated undirected edges as ``(u, v, bytes)`` arrays, u < v."""
        return self._edge_u, self._edge_v, self._edge_w

    def edges(self) -> Iterable[tuple[int, int, float]]:
        """Iterate over undirected edges ``(u, v, bytes)`` with ``u < v``."""
        for a, b, w in zip(self._edge_u, self._edge_v, self._edge_w):
            yield int(a), int(b), float(w)

    def has_edge(self, a: int, b: int) -> bool:
        """True if tasks ``a`` and ``b`` communicate directly."""
        return b in set(self.neighbor_slice(a)[0].tolist())

    # ------------------------------------------------------------- adjacency
    def _check_task(self, task: int) -> int:
        task = int(task)
        if not 0 <= task < self._n:
            raise TaskGraphError(f"task {task} out of range [0, {self._n})")
        return task

    def neighbor_slice(self, task: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor ids, edge bytes) contiguous views for ``task``."""
        task = self._check_task(task)
        lo, hi = self._indptr[task], self._indptr[task + 1]
        return self._indices[lo:hi], self._weights[lo:hi]

    def neighbors(self, task: int) -> list[int]:
        """Neighbor task ids of ``task``."""
        return [int(x) for x in self.neighbor_slice(task)[0]]

    def degree(self, task: int) -> int:
        """Number of communication partners of ``task``."""
        task = self._check_task(task)
        return int(self._indptr[task + 1] - self._indptr[task])

    def degrees(self) -> np.ndarray:
        """All task degrees as an int array."""
        return np.diff(self._indptr)

    def comm_volume(self, task: int) -> float:
        """Total bytes ``task`` exchanges with all its partners."""
        return float(self.neighbor_slice(task)[1].sum())

    def comm_volumes(self) -> np.ndarray:
        """Per-task total communication bytes (vectorized)."""
        return np.add.reduceat(
            np.append(self._weights, 0.0), self._indptr[:-1]
        ) * (np.diff(self._indptr) > 0)

    def adjacency_csr(self) -> sp.csr_matrix:
        """Symmetric CSR byte-weight matrix (copy; safe to mutate)."""
        return sp.csr_matrix(
            (self._weights.copy(), self._indices.copy(), self._indptr.copy()),
            shape=(self._n, self._n),
        )

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read-only ``(indptr, indices, weights)`` of the symmetric adjacency."""
        return self._indptr, self._indices, self._weights

    # ------------------------------------------------------------ conversion
    def to_networkx(self):
        """Export as a ``networkx.Graph`` with ``weight`` edge and node attrs."""
        import networkx as nx

        g = nx.Graph()
        for t in range(self._n):
            g.add_node(t, weight=float(self._vertex_weights[t]))
        for a, b, w in self.edges():
            g.add_edge(a, b, weight=w)
        return g

    @classmethod
    def from_networkx(cls, graph) -> "TaskGraph":
        """Build from a ``networkx.Graph`` with nodes ``0..n-1``.

        Edge attribute ``weight`` defaults to 1 byte; node attribute
        ``weight`` defaults to 1.0 load.
        """
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            raise TaskGraphError("networkx graph nodes must be exactly 0..n-1")
        vw = [float(graph.nodes[t].get("weight", 1.0)) for t in nodes]
        edges = [
            (a, b, float(data.get("weight", 1.0)))
            for a, b, data in graph.edges(data=True)
        ]
        return cls(len(nodes), edges, vw)

    def induced(self, tasks: Sequence[int]) -> "TaskGraph":
        """Induced subgraph on ``tasks``, relabeled to local ids ``0..k-1``.

        Edges with exactly one endpoint inside are dropped (their bytes
        leave the subproblem — callers tracking cross-traffic should account
        for it separately). Duplicate task ids are rejected.
        """
        ids = [self._check_task(t) for t in tasks]
        if len(set(ids)) != len(ids):
            raise TaskGraphError("induced() requires distinct task ids")
        local = {t: i for i, t in enumerate(ids)}
        edges = []
        for a, b, w in zip(self._edge_u.tolist(), self._edge_v.tolist(),
                           self._edge_w.tolist()):
            ia, ib = local.get(a), local.get(b)
            if ia is not None and ib is not None:
                edges.append((ia, ib, w))
        sub = TaskGraph(len(ids), edges, self._vertex_weights[np.asarray(ids)])
        if self._coords is not None:
            sub.attach_coords(self._coords[np.asarray(ids)])
        return sub

    def relabel(self, permutation: Sequence[int]) -> "TaskGraph":
        """Return a copy with task ``t`` renamed to ``permutation[t]``."""
        perm = np.asarray(permutation, dtype=np.int64)
        if sorted(perm.tolist()) != list(range(self._n)):
            raise TaskGraphError("relabel requires a permutation of 0..n-1")
        new_vw = np.empty_like(self._vertex_weights)
        new_vw[perm] = self._vertex_weights
        edges = [
            (int(perm[a]), int(perm[b]), float(w))
            for a, b, w in zip(self._edge_u, self._edge_v, self._edge_w)
        ]
        out = TaskGraph(self._n, edges, new_vw)
        if self._coords is not None:
            new_coords = np.empty_like(self._coords)
            new_coords[perm] = self._coords
            out.attach_coords(new_coords)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TaskGraph n={self._n} edges={self.num_edges} bytes={self.total_bytes:g}>"
