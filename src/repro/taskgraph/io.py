"""Task-graph (de)serialization.

This is the stand-in for Charm++'s ``+LBDump`` files: a load scenario written
once and replayed under many strategies (Section 5.1). The format is plain
JSON so dumps are diffable and portable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph

__all__ = ["taskgraph_to_json", "taskgraph_from_json", "save_taskgraph", "load_taskgraph"]

_FORMAT = "repro-taskgraph-v1"


def taskgraph_to_json(graph: TaskGraph) -> str:
    """Serialize ``graph`` to a JSON string."""
    payload = {
        "format": _FORMAT,
        "num_tasks": graph.num_tasks,
        "vertex_weights": [float(w) for w in graph.vertex_weights],
        "edges": [[a, b, w] for a, b, w in graph.edges()],
    }
    if graph.coords is not None:
        payload["coords"] = [[float(c) for c in row] for row in graph.coords]
    return json.dumps(payload)


def taskgraph_from_json(text: str) -> TaskGraph:
    """Inverse of :func:`taskgraph_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TaskGraphError(f"invalid task-graph JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise TaskGraphError(f"not a {_FORMAT} document")
    try:
        graph = TaskGraph(
            int(payload["num_tasks"]),
            [(int(a), int(b), float(w)) for a, b, w in payload["edges"]],
            [float(w) for w in payload["vertex_weights"]],
        )
        if "coords" in payload:
            graph.attach_coords(payload["coords"])
        return graph
    except (KeyError, TypeError, ValueError) as exc:
        raise TaskGraphError(f"malformed task-graph document: {exc}") from exc


def save_taskgraph(graph: TaskGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    Path(path).write_text(taskgraph_to_json(graph))


def load_taskgraph(path: str | Path) -> TaskGraph:
    """Read a task graph previously written by :func:`save_taskgraph`."""
    return taskgraph_from_json(Path(path).read_text())
