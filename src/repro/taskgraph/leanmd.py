"""Synthetic LeanMD communication graph (substitute for the paper's load dumps).

The paper's Section 5.2.3 maps real LeanMD (Charm++ molecular dynamics) load
dumps with ``3240 + p`` chares. We do not have those dumps, so we rebuild the
*structure* that produces them. LeanMD decomposes space into cells (patches)
and creates one pairwise-force compute object per interacting cell pair:

* a ``(6, 6, 6)`` periodic cell grid gives 216 cell objects;
* one self-compute per cell: 216 objects;
* one pair-compute per neighboring cell pair — 13 unique directions of the
  26-neighborhood under periodic boundaries: ``13 * 216 = 2808`` objects;

for a total of ``216 + 216 + 2808 = 3240`` chares, exactly the paper's count.
The ``+ p`` term is one lightweight per-processor manager object (reduction
client), which we also model.

Communication: each cell multicasts its atom coordinates to every compute
that reads it and receives forces back — so a cell and each of its computes
exchange ``2 * atoms_per_cell * bytes_per_atom`` bytes per step. Managers
exchange small control messages with a handful of cells. Compute loads scale
with the number of atom pairs examined.

Why the substitution preserves behaviour: Figure 5/6's phenomena are driven
by the coalesced-graph regime after METIS grouping — average degree ~12.7 of
a 18-node quotient graph (dense: every group talks to 70% of groups) versus
~19.5 of a 512-node quotient graph (sparse: 4%) — and this generator
reproduces those regimes because the underlying cell interactions are local
in exactly the same 26-neighbor pattern.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng

__all__ = ["leanmd_taskgraph", "LEANMD_BASE_CHARES"]

#: Chare count before the per-processor managers (matches the paper's 3240).
LEANMD_BASE_CHARES = 3240

# The 13 unique neighbor directions of a 26-neighborhood (one per +/- pair).
_HALF_DIRECTIONS: tuple[tuple[int, int, int], ...] = tuple(
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) > (0, 0, 0)
)


def leanmd_taskgraph(
    num_processors: int,
    cells_shape: tuple[int, int, int] = (6, 6, 6),
    atoms_per_cell: float = 200.0,
    bytes_per_atom: float = 24.0,
    manager_bytes: float = 128.0,
    seed: int | np.random.Generator | None = 0,
) -> TaskGraph:
    """Build the synthetic LeanMD task graph for ``num_processors`` processors.

    Returns a graph with ``prod(cells_shape) * 15 + num_processors`` tasks
    (cells + self-computes + pair-computes + managers); the default cell grid
    yields the paper's ``3240 + p``.
    """
    if num_processors < 1:
        raise TaskGraphError(f"num_processors must be >= 1, got {num_processors}")
    if len(cells_shape) != 3 or any(s < 3 for s in cells_shape):
        raise TaskGraphError(
            f"cells_shape must be 3-D with extents >= 3 (periodic), got {cells_shape!r}"
        )
    rng = as_rng(seed)
    nx_, ny_, nz_ = (int(s) for s in cells_shape)
    num_cells = nx_ * ny_ * nz_

    def cell_id(x: int, y: int, z: int) -> int:
        return (x % nx_) * ny_ * nz_ + (y % ny_) * nz_ + (z % nz_)

    # Jitter atom counts ±20% around the mean so loads are non-uniform.
    atoms = rng.uniform(0.8, 1.2, size=num_cells) * atoms_per_cell

    # --- id layout: cells | self-computes | pair-computes | managers
    self_base = num_cells
    pair_base = 2 * num_cells
    num_pairs = len(_HALF_DIRECTIONS) * num_cells
    mgr_base = pair_base + num_pairs
    n_total = mgr_base + num_processors

    edges: list[tuple[int, int, float]] = []
    loads = np.zeros(n_total, dtype=np.float64)

    # Cells: integration work proportional to atom count.
    loads[:num_cells] = atoms

    # Self-computes: all-pairs within one cell, O(atoms^2) work; traffic with
    # the owning cell is coordinates down + forces back.
    for c in range(num_cells):
        loads[self_base + c] = 0.5 * atoms[c] ** 2 / atoms_per_cell
        vol = 2.0 * atoms[c] * bytes_per_atom
        edges.append((c, self_base + c, vol))

    # Pair-computes: one per (cell, direction) under periodic boundaries.
    pid = pair_base
    for x in range(nx_):
        for y in range(ny_):
            for z in range(nz_):
                a = cell_id(x, y, z)
                for dx, dy, dz in _HALF_DIRECTIONS:
                    b = cell_id(x + dx, y + dy, z + dz)
                    loads[pid] = atoms[a] * atoms[b] / atoms_per_cell
                    edges.append((a, pid, 2.0 * atoms[a] * bytes_per_atom))
                    edges.append((b, pid, 2.0 * atoms[b] * bytes_per_atom))
                    pid += 1
    assert pid == mgr_base

    # Managers: one per processor; light control traffic with a few cells.
    cells_per_mgr = max(1, num_cells // num_processors)
    for m in range(num_processors):
        mgr = mgr_base + m
        loads[mgr] = 0.05 * atoms_per_cell
        start = (m * cells_per_mgr) % num_cells
        for k in range(min(3, num_cells)):
            edges.append((mgr, (start + k) % num_cells, manager_bytes))

    return TaskGraph(n_total, edges, loads)
