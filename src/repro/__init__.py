"""repro — topology-aware task mapping for reducing communication contention.

A production-quality reproduction of Agarwal, Sharma & Kalé (IPDPS 2006):
the **TopoLB** / **TopoCentLB** mapping heuristics, the hop-bytes metric,
the two-phase partition-and-map pipeline, plus every substrate the paper's
evaluation needs — machine topologies, a METIS-style multilevel partitioner,
a Charm++-style load-balancing runtime with dump/replay, and a discrete-event
interconnection-network simulator (the BigNetSim substitute).

Quickstart::

    from repro import Torus, mesh2d_pattern, TopoLB, RandomMapper

    topo = Torus((16, 16))
    tasks = mesh2d_pattern(16, 16, message_bytes=1024)
    print(TopoLB().map(tasks, topo).hops_per_byte)        # ~1.0
    print(RandomMapper(seed=0).map(tasks, topo).hops_per_byte)  # ~sqrt(256)/2 = 8

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.exceptions import (
    ReproError,
    TopologyError,
    TaskGraphError,
    PartitionError,
    MappingError,
    SimulationError,
    SpecError,
    ValidationError,
)
from repro.topology import (
    Topology,
    Mesh,
    Torus,
    Hypercube,
    FatTree,
    Dragonfly,
    ArbitraryTopology,
    SubTopology,
    topology_from_spec,
)
from repro.taskgraph import (
    TaskGraph,
    mesh2d_pattern,
    mesh3d_pattern,
    ring_pattern,
    all_to_all_pattern,
    random_taskgraph,
    geometric_taskgraph,
    scale_free_taskgraph,
    leanmd_taskgraph,
    coalesce,
    save_taskgraph,
    load_taskgraph,
)
from repro.partition import (
    Partitioner,
    GreedyPartitioner,
    RecursiveBisectionPartitioner,
    MultilevelPartitioner,
    SpectralPartitioner,
)
from repro.engine import (
    MappingEngine,
    MappingRequest,
    MappingResult,
    graph_from_spec,
    mapper_from_spec,
)
from repro.mapping import (
    Mapper,
    Mapping,
    TopoLB,
    TopoCentLB,
    RefineTopoLB,
    RandomMapper,
    IdentityMapper,
    TwoPhaseMapper,
    SimulatedAnnealingMapper,
    RecursiveEmbeddingMapper,
    LinearOrderingMapper,
    HybridTopoLB,
    EstimatorOrder,
    hop_bytes,
    hops_per_byte,
    per_link_loads,
    expected_random_hops_per_byte,
    render_placement,
    render_link_heat,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "TopologyError",
    "TaskGraphError",
    "PartitionError",
    "MappingError",
    "SimulationError",
    "SpecError",
    "ValidationError",
    "Topology",
    "Mesh",
    "Torus",
    "Hypercube",
    "FatTree",
    "Dragonfly",
    "ArbitraryTopology",
    "SubTopology",
    "topology_from_spec",
    "TaskGraph",
    "mesh2d_pattern",
    "mesh3d_pattern",
    "ring_pattern",
    "all_to_all_pattern",
    "random_taskgraph",
    "geometric_taskgraph",
    "scale_free_taskgraph",
    "leanmd_taskgraph",
    "coalesce",
    "save_taskgraph",
    "load_taskgraph",
    "Partitioner",
    "GreedyPartitioner",
    "RecursiveBisectionPartitioner",
    "MultilevelPartitioner",
    "SpectralPartitioner",
    "MappingEngine",
    "MappingRequest",
    "MappingResult",
    "graph_from_spec",
    "mapper_from_spec",
    "Mapper",
    "Mapping",
    "TopoLB",
    "TopoCentLB",
    "RefineTopoLB",
    "RandomMapper",
    "IdentityMapper",
    "TwoPhaseMapper",
    "SimulatedAnnealingMapper",
    "RecursiveEmbeddingMapper",
    "LinearOrderingMapper",
    "HybridTopoLB",
    "EstimatorOrder",
    "hop_bytes",
    "hops_per_byte",
    "per_link_loads",
    "expected_random_hops_per_byte",
    "render_placement",
    "render_link_heat",
    "__version__",
]
