"""RefineTopoLB — pairwise-swap hop-bytes refiner (Section 5.2.3).

The paper applies this after an initial mapper: "The refiner swaps tasks
between processors to see if hop-bytes are reduced or not. It swaps only when
hop-bytes get reduced." On LeanMD it shaves a further ~12% off TopoLB's
hop-bytes.

Implementation: maintain the first-order cost table ``C[t, q] = sum over
neighbors j of c_tj * d(q, P(j))``. For tasks ``a``, ``b`` on processors
``pa``, ``pb`` the swap delta is::

    delta(a, b) = C[a, pb] + C[b, pa] - C[a, pa] - C[b, pb]
                  + 2 * c_ab * d(pa, pb)          # a<->b edge is unaffected

(the correction term undoes the double-counted improvement the naive sum
claims for the a-b edge itself, whose endpoints merely trade places). A
sweep evaluates, for each task ``a``, the delta against *every* other task
in one vectorized shot and greedily applies the best strictly-negative swap;
sweeps repeat until a full pass makes no swap or ``max_sweeps`` is hit.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["RefineTopoLB"]


class RefineTopoLB(Mapper):
    """Hop-bytes-decreasing pairwise-swap refiner.

    Parameters
    ----------
    base:
        Optional mapper producing the initial mapping when :meth:`map` is
        called directly (the paper runs TopoLB first). :meth:`refine` can
        also polish any existing bijective :class:`Mapping`.
    max_sweeps:
        Upper bound on full passes over the tasks.
    seed:
        Sweep order is randomized (a fixed order can get stuck in the same
        local minimum every sweep); the seed makes runs reproducible.
    """

    strategy_name = "RefineTopoLB"

    def __init__(self, base: Mapper | None = None, max_sweeps: int = 10,
                 seed: int | np.random.Generator | None = 0):
        if max_sweeps < 1:
            raise MappingError(f"max_sweeps must be >= 1, got {max_sweeps}")
        self._base = base
        self._max_sweeps = int(max_sweeps)
        self._seed = seed

    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        if self._base is None:
            raise MappingError(
                "RefineTopoLB.map needs a base mapper; either construct with "
                "base=TopoLB() or call .refine(existing_mapping)"
            )
        return self.refine(self._base.map(graph, topology))

    def refine(self, mapping: Mapping) -> Mapping:
        """Return a refined copy of ``mapping`` (never worse in hop-bytes)."""
        prof = obs.active()
        if prof is None:
            return self._refine(mapping)
        with prof.timer("refine.refine"):
            return self._refine(mapping, prof)

    def _refine(self, mapping: Mapping, prof: obs.Profiler | None = None) -> Mapping:
        graph, topology = mapping.graph, mapping.topology
        n = self._check_sizes(graph, topology)
        if not mapping.is_bijection():
            raise MappingError("RefineTopoLB requires a bijective mapping")
        rng = as_rng(self._seed)

        dist = topology.distance_matrix().astype(np.float64, copy=False)
        indptr, indices, weights = graph.csr_arrays()
        assign = mapping.assignment.copy()

        # C[t, q] = first-order cost of task t if it sat on processor q.
        csr = graph.adjacency_csr()
        cost = np.asarray(csr @ dist[assign])  # (n, p)

        ids = np.arange(n)
        sweeps = evaluations = accepted = 0
        for _sweep in range(self._max_sweeps):
            swapped = False
            if prof is not None:
                sweeps += 1
            for a in rng.permutation(n):
                a = int(a)
                pa = assign[a]
                # delta against every candidate partner b, vectorized.
                delta = (
                    cost[a, assign]            # C[a, pb] for every b
                    + cost[ids, pa]            # C[b, pa]
                    - cost[a, pa]
                    - cost[ids, assign]        # C[b, pb]
                )
                lo, hi = indptr[a], indptr[a + 1]
                nbrs, wts = indices[lo:hi], weights[lo:hi]
                delta[nbrs] += 2.0 * wts * dist[pa, assign[nbrs]]
                delta[a] = 0.0
                b = int(np.argmin(delta))
                improved = delta[b] < -1e-9
                if prof is not None:
                    evaluations += 1
                    if improved:
                        accepted += 1
                if improved:
                    self._apply_swap(a, b, assign, cost, dist, indptr, indices, weights)
                    swapped = True
            if not swapped:
                break

        if prof is not None:
            prof.count("refine.sweeps", sweeps)
            prof.count("refine.swaps_accepted", accepted)
            prof.count("refine.swaps_rejected", evaluations - accepted)
        return mapping.with_assignment(assign)

    @staticmethod
    def _apply_swap(a: int, b: int, assign: np.ndarray, cost: np.ndarray,
                    dist: np.ndarray, indptr: np.ndarray, indices: np.ndarray,
                    weights: np.ndarray) -> None:
        """Swap the processors of ``a`` and ``b`` and patch the cost table.

        Only the rows of the neighbors of ``a`` and ``b`` reference the moved
        processors, so the patch costs ``O(p * (deg a + deg b))``.
        """
        pa, pb = int(assign[a]), int(assign[b])
        assign[a], assign[b] = pb, pa
        move = dist[pb] - dist[pa]  # how d(q, P(a)) changed, for every q
        for t, new_minus_old in ((a, move), (b, -move)):
            lo, hi = indptr[t], indptr[t + 1]
            for j, c in zip(indices[lo:hi], weights[lo:hi]):
                cost[int(j)] += c * new_minus_old
