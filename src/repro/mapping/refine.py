"""RefineTopoLB — pairwise-swap hop-bytes refiner (Section 5.2.3).

The paper applies this after an initial mapper: "The refiner swaps tasks
between processors to see if hop-bytes are reduced or not. It swaps only when
hop-bytes get reduced." On LeanMD it shaves a further ~12% off TopoLB's
hop-bytes.

Implementation: maintain the first-order cost table ``C[t, q] = sum over
neighbors j of c_tj * d(q, P(j))``. For tasks ``a``, ``b`` on processors
``pa``, ``pb`` the swap delta is::

    delta(a, b) = C[a, pb] + C[b, pa] - C[a, pa] - C[b, pb]
                  + 2 * c_ab * d(pa, pb)          # a<->b edge is unaffected

(the correction term undoes the double-counted improvement the naive sum
claims for the a-b edge itself, whose endpoints merely trade places). A
sweep evaluates, for each task ``a``, the delta against *every* other task
and greedily applies the best strictly-negative swap; sweeps repeat until a
full pass makes no swap or ``max_sweeps`` is hit.

Two kernels implement the sweep (see :mod:`repro.mapping.kernels`). The
``"reference"`` kernel evaluates one task row at a time, exactly as above.
The ``"vectorized"`` kernel (default) is the *block sweep*: it evaluates the
delta rows for a whole block of ``block_size`` tasks as one ``(B, n)``
matrix expression, then walks the block in sweep order consuming the
precomputed rows. The precomputed rows are valid until the first accepted
swap mutates ``assign``/``cost``; from that point the block is discarded and
a fresh (small, re-doubling) window restarts just past the swap, so the
block sweep visits the same tasks in the same order with the same deltas as
the reference kernel — bit-identical refined mappings (converged sweeps,
where no swap fires, collapse to ~``log(n / B)`` matrix operations total).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping, resolve_allowed
from repro.mapping.context import MappingContext, context_for
from repro.mapping.kernels import resolve_kernel
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["RefineTopoLB"]


class RefineTopoLB(Mapper):
    """Hop-bytes-decreasing pairwise-swap refiner.

    Parameters
    ----------
    base:
        Optional mapper producing the initial mapping when :meth:`map` is
        called directly (the paper runs TopoLB first). :meth:`refine` can
        also polish any existing bijective :class:`Mapping`.
    max_sweeps:
        Upper bound on full passes over the tasks.
    seed:
        Sweep order is randomized (a fixed order can get stuck in the same
        local minimum every sweep); the seed makes runs reproducible.
    kernel:
        ``"vectorized"`` (block sweep, the default), ``"reference"``
        (row-at-a-time), or ``None`` for the process-wide default.
    block_size:
        Tasks per ``(B, n)`` delta block in the vectorized kernel. Larger
        blocks amortize better on converged sweeps but waste more
        precomputation when swaps fire early in a block.
    """

    strategy_name = "RefineTopoLB"

    def __init__(self, base: Mapper | None = None, max_sweeps: int = 10,
                 seed: int | np.random.Generator | None = 0,
                 kernel: str | None = None, block_size: int = 64):
        if max_sweeps < 1:
            raise MappingError(f"max_sweeps must be >= 1, got {max_sweeps}")
        if block_size < 1:
            raise MappingError(f"block_size must be >= 1, got {block_size}")
        self._base = base
        self._max_sweeps = int(max_sweeps)
        self._seed = seed
        self._kernel = resolve_kernel(kernel)
        self._block_size = int(block_size)

    @property
    def kernel(self) -> str:
        """The resolved kernel name ("vectorized" or "reference")."""
        return self._kernel

    def map(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
        *,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        if self._base is None:
            raise MappingError(
                "RefineTopoLB.map needs a base mapper; either construct with "
                "base=TopoLB() or call .refine(existing_mapping)"
            )
        allowed = resolve_allowed(topology, allowed)
        if allowed is None:
            base_mapping = self._base.map(graph, topology)
        else:
            base_mapping = self._base.map(graph, topology, allowed=allowed)
        return self.refine(base_mapping, allowed=allowed, ctx=ctx)

    def refine(
        self, mapping: Mapping, allowed: np.ndarray | None = None,
        *, ctx: MappingContext | None = None,
    ) -> Mapping:
        """Return a refined copy of ``mapping`` (never worse in hop-bytes).

        ``allowed`` (auto-derived on degraded machines) declares the legal
        processors; the refiner only swaps tasks pairwise, so a mapping that
        starts within the allowed set stays within it. ``ctx`` supplies
        shared per-(graph, topology) tables.
        """
        allowed = resolve_allowed(mapping.topology, allowed)
        run = (
            self._refine_reference
            if self._kernel == "reference"
            else self._refine_vectorized
        )
        prof = obs.active()
        if prof is None:
            return run(mapping, allowed=allowed, ctx=ctx)
        with prof.timer("refine.refine"):
            return run(mapping, prof, allowed=allowed, ctx=ctx)

    def _setup(self, mapping: Mapping, allowed: np.ndarray | None = None,
               ctx: MappingContext | None = None):
        """Shared kernel state: distance matrix, CSR arrays, cost table."""
        graph, topology = mapping.graph, mapping.topology
        if ctx is None:
            ctx = context_for(graph, topology)
        n = self._check_sizes(graph, topology, allowed)
        if allowed is None:
            if not mapping.is_bijection():
                raise MappingError("RefineTopoLB requires a bijective mapping")
        else:
            # Masked runs relax bijectivity to "injective, within the allowed
            # set": one task per processor, every task on a healthy one.
            if not mapping.is_injective():
                raise MappingError(
                    "RefineTopoLB requires an injective mapping "
                    "(one task per processor)"
                )
            if not allowed[mapping.assignment].all():
                raise MappingError(
                    "RefineTopoLB: mapping places tasks on disallowed "
                    "(dead) processors"
                )
        rng = as_rng(self._seed)

        dist = ctx.distance_matrix(np.float64)
        indptr, indices, weights = ctx.csr_arrays()
        assign = mapping.assignment.copy()

        # C[t, q] = first-order cost of task t if it sat on processor q.
        csr = ctx.adjacency_csr()
        cost = np.asarray(csr @ dist[assign])  # (n, p)
        return n, rng, dist, indptr, indices, weights, assign, cost

    def _refine_reference(
        self, mapping: Mapping, prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Row-at-a-time sweep — the executable specification of the block
        sweep; the equivalence suite pins the two to identical outputs.

        Swaps only exchange the processors of two mapped tasks, so the sweep
        body is mask-oblivious: a mapping that starts on allowed processors
        can never leave them."""
        n, rng, dist, indptr, indices, weights, assign, cost = self._setup(
            mapping, allowed, ctx
        )

        ids = np.arange(n)
        sweeps = evaluations = accepted = 0
        for _sweep in range(self._max_sweeps):
            swapped = False
            if prof is not None:
                sweeps += 1
            for a in rng.permutation(n):
                a = int(a)
                pa = assign[a]
                # delta against every candidate partner b, vectorized.
                delta = (
                    cost[a, assign]            # C[a, pb] for every b
                    + cost[ids, pa]            # C[b, pa]
                    - cost[a, pa]
                    - cost[ids, assign]        # C[b, pb]
                )
                lo, hi = indptr[a], indptr[a + 1]
                nbrs, wts = indices[lo:hi], weights[lo:hi]
                delta[nbrs] += 2.0 * wts * dist[pa, assign[nbrs]]
                delta[a] = 0.0
                b = int(np.argmin(delta))
                improved = delta[b] < -1e-9
                if prof is not None:
                    evaluations += 1
                    if improved:
                        accepted += 1
                if improved:
                    self._apply_swap(a, b, assign, cost, dist, indptr, indices, weights)
                    swapped = True
            if not swapped:
                break

        if prof is not None:
            prof.count("refine.sweeps", sweeps)
            prof.count("refine.swaps_accepted", accepted)
            prof.count("refine.swaps_rejected", evaluations - accepted)
        return mapping.with_assignment(assign)

    def _refine_vectorized(
        self, mapping: Mapping, prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Block sweep: precompute ``(B, n)`` delta rows, consume them until
        the first accepted swap invalidates the block (see module docstring).
        """
        n, rng, dist, indptr, indices, weights, assign, cost = self._setup(
            mapping, allowed, ctx
        )

        ids = np.arange(n)
        bsize = min(self._block_size, n)
        # Post-swap restart size. An accepted swap discards the precomputed
        # rows after it, so on swap-dense sweeps a large restart window
        # wastes almost all of its (B, n) block; restarting small and
        # re-doubling bounds the waste per swap at O(floor * n) while
        # converged sweeps still grow the window to n within a few blocks.
        floor = min(bsize, 4)
        sweeps = evaluations = accepted = 0
        blocks_precomputed = 0

        # diag[t] = cost[t, assign[t]], maintained incrementally: the full
        # diagonal gather strides one row per element (a p-page walk), and
        # paying it per block dominated swap-dense sweeps. A swap only moves
        # the entries of a, b, and their neighbors (the only rows/columns of
        # the gather that changed), so those are re-copied after each swap —
        # pure element copies, never arithmetic, hence bitwise identical to
        # regathering the whole diagonal.
        diag = cost[ids, assign]

        def block_deltas(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """All delta rows of ``block`` in one (B, n) expression, reduced
            to per-row (argmin, min). The elementwise term order matches the
            reference kernel's row exactly (in-place +=/-= keep the same
            left-to-right evaluation), so every precomputed row is bitwise
            equal to a fresh one and argmin picks the same partner.
            """
            pa_blk = assign[block]
            deltas = cost[block[:, None], assign[None, :]]  # C[a, pb]
            deltas += cost[:, pa_blk].T                     # C[b, pa]
            deltas -= diag[block][:, None]                  # C[a, pa]
            deltas -= diag[None, :]                         # C[b, pb]
            # Neighbor-edge correction for every block row at once: flatten
            # the block's CSR slices, then scatter-add. (task-row, neighbor)
            # pairs are unique, so the fancy-indexed += is exact.
            rows = np.arange(len(block))
            los, his = indptr[block], indptr[block + 1]
            degs = his - los
            total = int(degs.sum())
            if total:
                offsets = np.repeat(his - np.cumsum(degs), degs)
                flat = offsets + np.arange(total)
                nbrs = indices[flat]
                rows_rep = np.repeat(rows, degs)
                deltas[rows_rep, nbrs] += (
                    2.0 * weights[flat] * dist[assign[block[rows_rep]], assign[nbrs]]
                )
            deltas[rows, block] = 0.0
            bmins = deltas.argmin(axis=1)
            return bmins, deltas[rows, bmins]

        for _sweep in range(self._max_sweeps):
            swapped = False
            if prof is not None:
                sweeps += 1
            perm = rng.permutation(n)
            pos = 0
            window = bsize
            while pos < n:
                # Precompute a window of delta rows; consume them in sweep
                # order until a swap mutates assign/cost, then restart the
                # window just past the swap (an accepted swap invalidates
                # every precomputed row after it). The window doubles after
                # each swap-free block — converged sweeps collapse to a
                # handful of precomputes — and snaps back to ``floor`` on a
                # swap. Window size never changes the result, only how much
                # precomputed work a swap throws away.
                block = perm[pos:pos + window]
                bmins, bvals = block_deltas(block)
                blocks_precomputed += 1
                consumed = len(block)
                hit = False
                for i, a in enumerate(block):
                    improved = bvals[i] < -1e-9
                    if prof is not None:
                        evaluations += 1
                        if improved:
                            accepted += 1
                    if improved:
                        a, b = int(a), int(bmins[i])
                        self._apply_swap(
                            a, b, assign, cost, dist, indptr, indices, weights,
                        )
                        # Entries of the diagonal the swap moved: a and b
                        # (their assignment changed) and their neighbors
                        # (their cost rows changed). Duplicate ids are fine —
                        # this is plain assignment, not accumulation.
                        upd = np.concatenate((
                            (a, b),
                            indices[indptr[a]:indptr[a + 1]],
                            indices[indptr[b]:indptr[b + 1]],
                        ))
                        diag[upd] = cost[upd, assign[upd]]
                        swapped = True
                        hit = True
                        consumed = i + 1
                        break
                pos += consumed
                window = floor if hit else min(window * 2, n)
            if not swapped:
                break

        if prof is not None:
            prof.count("refine.sweeps", sweeps)
            prof.count("refine.swaps_accepted", accepted)
            prof.count("refine.swaps_rejected", evaluations - accepted)
            prof.count("refine.blocks_precomputed", blocks_precomputed)
        return mapping.with_assignment(assign)

    @staticmethod
    def _apply_swap(a: int, b: int, assign: np.ndarray, cost: np.ndarray,
                    dist: np.ndarray, indptr: np.ndarray, indices: np.ndarray,
                    weights: np.ndarray) -> None:
        """Swap the processors of ``a`` and ``b`` and patch the cost table.

        Only the rows of the neighbors of ``a`` and ``b`` reference the moved
        processors, so the patch costs ``O(p * (deg a + deg b))``.
        """
        pa, pb = int(assign[a]), int(assign[b])
        if a == b or pa == pb:
            # Degenerate "swap": nothing moves, the delta is exactly zero,
            # and patching the cost table would only accumulate rounding.
            return
        assign[a], assign[b] = pb, pa
        move = dist[pb] - dist[pa]  # how d(q, P(a)) changed, for every q
        for t, sign in ((a, 1.0), (b, -1.0)):
            lo, hi = indptr[t], indptr[t + 1]
            nbrs = indices[lo:hi]
            if nbrs.size:
                # One fanned-out row update per endpoint; neighbor ids are
                # unique within a CSR row, so the fancy-indexed += is exact.
                cost[nbrs] += (sign * weights[lo:hi])[:, None] * move
