"""RefineTopoLB — pairwise-swap hop-bytes refiner (Section 5.2.3).

The paper applies this after an initial mapper: "The refiner swaps tasks
between processors to see if hop-bytes are reduced or not. It swaps only when
hop-bytes get reduced." On LeanMD it shaves a further ~12% off TopoLB's
hop-bytes.

Implementation: maintain the first-order cost table ``C[t, q] = sum over
neighbors j of c_tj * d(q, P(j))``. For tasks ``a``, ``b`` on processors
``pa``, ``pb`` the swap delta is::

    delta(a, b) = C[a, pb] + C[b, pa] - C[a, pa] - C[b, pb]
                  + 2 * c_ab * d(pa, pb)          # a<->b edge is unaffected

(the correction term undoes the double-counted improvement the naive sum
claims for the a-b edge itself, whose endpoints merely trade places). A
sweep evaluates, for each task ``a``, the delta against *every* other task
and greedily applies the best strictly-negative swap; sweeps repeat until a
full pass makes no swap or ``max_sweeps`` is hit.

Three kernels implement the sweep (see :mod:`repro.mapping.kernels`). The
``"reference"`` kernel evaluates one task row at a time, exactly as above.
The ``"vectorized"`` kernel (default) is the *block sweep*: it evaluates the
delta rows for a whole block of ``block_size`` tasks as one ``(B, n)``
matrix expression, then walks the block in sweep order consuming the
precomputed rows. The precomputed rows are valid until the first accepted
swap mutates ``assign``/``cost``; from that point the block is discarded and
a fresh (small, re-doubling) window restarts just past the swap, so the
block sweep visits the same tasks in the same order with the same deltas as
the reference kernel — bit-identical refined mappings (converged sweeps,
where no swap fires, collapse to ~``log(n / B)`` matrix operations total).

The ``"incremental"`` kernel replaces *discard* with *repair*: it caches
each task's best swap partner ``(argmin, min)`` and, after an accepted swap
of ``(a, b)``, only touches what actually changed. The dirty set is
``{a, b} ∪ N(a) ∪ N(b)`` — exactly the tasks whose ``assign``/``cost``-row
entries :meth:`RefineTopoLB._apply_swap` mutated — so a cached row outside
the dirty set changed *only at the dirty columns*. Those entries are
recomputed as one ``(rows, |dirty|)`` matrix in the reference term order
(bitwise equal to a fresh evaluation) and folded into the cache under
argmin's lowest-index tie-breaking; rows inside the dirty set, and rows
whose cached argmin fell in it (their proof of minimality is gone), are
recomputed in full on their next visit. Sweeps after the first therefore
cost O(changed): a converged sweep is n cache reads, and each accepted swap
repairs O(n · (deg a + deg b)) entries instead of discarding an O(n²)
precomputation. On dense graphs (degree ~ n, e.g. all-to-all) the dirty set
covers every column and the repair degenerates to vectorized-kernel cost —
the win is for the sparse stencils the paper maps.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import MappingError
from repro.mapping import _native
from repro.mapping.base import Mapper, Mapping, resolve_allowed
from repro.mapping.context import MappingContext, context_for
from repro.mapping.kernels import resolve_kernel
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["RefineTopoLB"]


class RefineTopoLB(Mapper):
    """Hop-bytes-decreasing pairwise-swap refiner.

    Parameters
    ----------
    base:
        Optional mapper producing the initial mapping when :meth:`map` is
        called directly (the paper runs TopoLB first). :meth:`refine` can
        also polish any existing bijective :class:`Mapping`.
    max_sweeps:
        Upper bound on full passes over the tasks.
    seed:
        Sweep order is randomized (a fixed order can get stuck in the same
        local minimum every sweep); the seed makes runs reproducible.
    kernel:
        ``"vectorized"`` (block sweep, the default), ``"reference"``
        (row-at-a-time), ``"incremental"`` (cached best-swap rows with
        dirty-set repair), or ``None`` for the process-wide default.
    block_size:
        Tasks per ``(B, n)`` delta block in the vectorized kernel. Larger
        blocks amortize better on converged sweeps but waste more
        precomputation when swaps fire early in a block.
    """

    strategy_name = "RefineTopoLB"

    def __init__(self, base: Mapper | None = None, max_sweeps: int = 10,
                 seed: int | np.random.Generator | None = 0,
                 kernel: str | None = None, block_size: int = 64):
        if max_sweeps < 1:
            raise MappingError(f"max_sweeps must be >= 1, got {max_sweeps}")
        if block_size < 1:
            raise MappingError(f"block_size must be >= 1, got {block_size}")
        self._base = base
        self._max_sweeps = int(max_sweeps)
        self._seed = seed
        self._kernel = resolve_kernel(kernel)
        self._block_size = int(block_size)

    @property
    def kernel(self) -> str:
        """The resolved kernel name ("vectorized", "reference" or "incremental")."""
        return self._kernel

    def map(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
        *,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        if self._base is None:
            raise MappingError(
                "RefineTopoLB.map needs a base mapper; either construct with "
                "base=TopoLB() or call .refine(existing_mapping)"
            )
        allowed = resolve_allowed(topology, allowed)
        if allowed is None:
            base_mapping = self._base.map(graph, topology)
        else:
            base_mapping = self._base.map(graph, topology, allowed=allowed)
        return self.refine(base_mapping, allowed=allowed, ctx=ctx)

    def refine(
        self, mapping: Mapping, allowed: np.ndarray | None = None,
        *, ctx: MappingContext | None = None,
    ) -> Mapping:
        """Return a refined copy of ``mapping`` (never worse in hop-bytes).

        ``allowed`` (auto-derived on degraded machines) declares the legal
        processors; the refiner only swaps tasks pairwise, so a mapping that
        starts within the allowed set stays within it. ``ctx`` supplies
        shared per-(graph, topology) tables.
        """
        allowed = resolve_allowed(mapping.topology, allowed)
        run = {
            "reference": self._refine_reference,
            "incremental": self._refine_incremental,
        }.get(self._kernel, self._refine_vectorized)
        prof = obs.active()
        if prof is None:
            return run(mapping, allowed=allowed, ctx=ctx)
        with prof.timer("refine.refine"):
            return run(mapping, prof, allowed=allowed, ctx=ctx)

    def _setup(self, mapping: Mapping, allowed: np.ndarray | None = None,
               ctx: MappingContext | None = None):
        """Shared kernel state: distance matrix, CSR arrays, cost table."""
        graph, topology = mapping.graph, mapping.topology
        if ctx is None:
            ctx = context_for(graph, topology)
        n = self._check_sizes(graph, topology, allowed)
        if allowed is None:
            if not mapping.is_bijection():
                raise MappingError("RefineTopoLB requires a bijective mapping")
        else:
            # Masked runs relax bijectivity to "injective, within the allowed
            # set": one task per processor, every task on a healthy one.
            if not mapping.is_injective():
                raise MappingError(
                    "RefineTopoLB requires an injective mapping "
                    "(one task per processor)"
                )
            if not allowed[mapping.assignment].all():
                raise MappingError(
                    "RefineTopoLB: mapping places tasks on disallowed "
                    "(dead) processors"
                )
        rng = as_rng(self._seed)

        dist = ctx.distance_matrix(np.float64)
        indptr, indices, weights = ctx.csr_arrays()
        assign = mapping.assignment.copy()

        # C[t, q] = first-order cost of task t if it sat on processor q.
        csr = ctx.adjacency_csr()
        cost = np.asarray(csr @ dist[assign])  # (n, p)
        return n, rng, dist, indptr, indices, weights, assign, cost

    @staticmethod
    def _record_sweep(prof: obs.Profiler, n: int, sweep: int,
                      visits: int, accepted: int) -> None:
        """Per-sweep accounting event. Every kernel visits the same tasks and
        accepts the same swaps (bit-identity), so the event stream is
        kernel-independent: each visit weighs a task against its ``n - 1``
        candidate partners regardless of how much arithmetic the kernel
        actually spent producing the row."""
        prof.event(
            "refine.sweep",
            sweep=sweep,
            accepted=accepted,
            evaluated_pairs=visits * (n - 1),
        )

    @staticmethod
    def _record_totals(prof: obs.Profiler | None, n: int, sweeps: int,
                       evaluations: int, accepted: int) -> None:
        """Whole-refine counter totals, consistent with the per-sweep events
        (``refine.pairs_evaluated`` == sum of the events' ``evaluated_pairs``)."""
        if prof is None:
            return
        prof.count("refine.sweeps", sweeps)
        prof.count("refine.swaps_accepted", accepted)
        prof.count("refine.swaps_rejected", evaluations - accepted)
        prof.count("refine.pairs_evaluated", evaluations * (n - 1))

    def _refine_reference(
        self, mapping: Mapping, prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Row-at-a-time sweep — the executable specification of the block
        sweep; the equivalence suite pins the two to identical outputs.

        Swaps only exchange the processors of two mapped tasks, so the sweep
        body is mask-oblivious: a mapping that starts on allowed processors
        can never leave them."""
        n, rng, dist, indptr, indices, weights, assign, cost = self._setup(
            mapping, allowed, ctx
        )

        ids = np.arange(n)
        sweeps = evaluations = accepted = 0
        for _sweep in range(self._max_sweeps):
            swapped = False
            sweep_visits = sweep_accepted = 0
            if prof is not None:
                sweeps += 1
            for a in rng.permutation(n):
                a = int(a)
                pa = assign[a]
                # delta against every candidate partner b, vectorized.
                delta = (
                    cost[a, assign]            # C[a, pb] for every b
                    + cost[ids, pa]            # C[b, pa]
                    - cost[a, pa]
                    - cost[ids, assign]        # C[b, pb]
                )
                lo, hi = indptr[a], indptr[a + 1]
                nbrs, wts = indices[lo:hi], weights[lo:hi]
                delta[nbrs] += 2.0 * wts * dist[pa, assign[nbrs]]
                delta[a] = 0.0
                b = int(np.argmin(delta))
                improved = delta[b] < -1e-9
                if prof is not None:
                    evaluations += 1
                    sweep_visits += 1
                    if improved:
                        accepted += 1
                        sweep_accepted += 1
                if improved:
                    self._apply_swap(a, b, assign, cost, dist, indptr, indices, weights)
                    swapped = True
            if prof is not None:
                self._record_sweep(prof, n, sweeps, sweep_visits, sweep_accepted)
            if not swapped:
                break

        self._record_totals(prof, n, sweeps, evaluations, accepted)
        return mapping.with_assignment(assign)

    def _refine_vectorized(
        self, mapping: Mapping, prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Block sweep: precompute ``(B, n)`` delta rows, consume them until
        the first accepted swap invalidates the block (see module docstring).
        """
        n, rng, dist, indptr, indices, weights, assign, cost = self._setup(
            mapping, allowed, ctx
        )

        ids = np.arange(n)
        bsize = min(self._block_size, n)
        # Post-swap restart size. An accepted swap discards the precomputed
        # rows after it, so on swap-dense sweeps a large restart window
        # wastes almost all of its (B, n) block; restarting small and
        # re-doubling bounds the waste per swap at O(floor * n) while
        # converged sweeps still grow the window to n within a few blocks.
        floor = min(bsize, 4)
        sweeps = evaluations = accepted = 0
        blocks_precomputed = 0

        # diag[t] = cost[t, assign[t]], maintained incrementally: the full
        # diagonal gather strides one row per element (a p-page walk), and
        # paying it per block dominated swap-dense sweeps. A swap only moves
        # the entries of a, b, and their neighbors (the only rows/columns of
        # the gather that changed), so those are re-copied after each swap —
        # pure element copies, never arithmetic, hence bitwise identical to
        # regathering the whole diagonal.
        diag = cost[ids, assign]

        def block_deltas(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """All delta rows of ``block`` in one (B, n) expression, reduced
            to per-row (argmin, min). The elementwise term order matches the
            reference kernel's row exactly (in-place +=/-= keep the same
            left-to-right evaluation), so every precomputed row is bitwise
            equal to a fresh one and argmin picks the same partner.
            """
            pa_blk = assign[block]
            deltas = cost[block[:, None], assign[None, :]]  # C[a, pb]
            deltas += cost[:, pa_blk].T                     # C[b, pa]
            deltas -= diag[block][:, None]                  # C[a, pa]
            deltas -= diag[None, :]                         # C[b, pb]
            # Neighbor-edge correction for every block row at once: flatten
            # the block's CSR slices, then scatter-add. (task-row, neighbor)
            # pairs are unique, so the fancy-indexed += is exact.
            rows = np.arange(len(block))
            los, his = indptr[block], indptr[block + 1]
            degs = his - los
            total = int(degs.sum())
            if total:
                offsets = np.repeat(his - np.cumsum(degs), degs)
                flat = offsets + np.arange(total)
                nbrs = indices[flat]
                rows_rep = np.repeat(rows, degs)
                deltas[rows_rep, nbrs] += (
                    2.0 * weights[flat] * dist[assign[block[rows_rep]], assign[nbrs]]
                )
            deltas[rows, block] = 0.0
            bmins = deltas.argmin(axis=1)
            return bmins, deltas[rows, bmins]

        for _sweep in range(self._max_sweeps):
            swapped = False
            sweep_visits = sweep_accepted = 0
            if prof is not None:
                sweeps += 1
            perm = rng.permutation(n)
            pos = 0
            window = bsize
            while pos < n:
                # Precompute a window of delta rows; consume them in sweep
                # order until a swap mutates assign/cost, then restart the
                # window just past the swap (an accepted swap invalidates
                # every precomputed row after it). The window doubles after
                # each swap-free block — converged sweeps collapse to a
                # handful of precomputes — and snaps back to ``floor`` on a
                # swap. Window size never changes the result, only how much
                # precomputed work a swap throws away.
                block = perm[pos:pos + window]
                bmins, bvals = block_deltas(block)
                blocks_precomputed += 1
                consumed = len(block)
                hit = False
                for i, a in enumerate(block):
                    improved = bvals[i] < -1e-9
                    if prof is not None:
                        evaluations += 1
                        sweep_visits += 1
                        if improved:
                            accepted += 1
                            sweep_accepted += 1
                    if improved:
                        a, b = int(a), int(bmins[i])
                        self._apply_swap(
                            a, b, assign, cost, dist, indptr, indices, weights,
                        )
                        # Entries of the diagonal the swap moved: a and b
                        # (their assignment changed) and their neighbors
                        # (their cost rows changed). Duplicate ids are fine —
                        # this is plain assignment, not accumulation.
                        upd = np.concatenate((
                            (a, b),
                            indices[indptr[a]:indptr[a + 1]],
                            indices[indptr[b]:indptr[b + 1]],
                        ))
                        diag[upd] = cost[upd, assign[upd]]
                        swapped = True
                        hit = True
                        consumed = i + 1
                        break
                pos += consumed
                window = floor if hit else min(window * 2, n)
            if prof is not None:
                self._record_sweep(prof, n, sweeps, sweep_visits, sweep_accepted)
            if not swapped:
                break

        self._record_totals(prof, n, sweeps, evaluations, accepted)
        if prof is not None:
            prof.count("refine.blocks_precomputed", blocks_precomputed)
        return mapping.with_assignment(assign)

    def _refine_incremental(
        self, mapping: Mapping, prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Incremental kernel dispatch: run the compiled sweep when a C
        toolchain is available (see :mod:`repro.mapping._native`), otherwise
        the pure-NumPy delta structure below. Both paths are bit-identical
        to the reference kernel; the compiled one exists because the
        per-swap bookkeeping is scalar work that NumPy call overhead
        dominates at paper scales (n ~ 512)."""
        native = _native.load()
        if native is not None:
            return self._refine_incremental_native(
                native, mapping, prof, allowed=allowed, ctx=ctx
            )
        return self._refine_incremental_numpy(
            mapping, prof, allowed=allowed, ctx=ctx
        )

    def _refine_incremental_native(
        self, native: "_native.NativeRefine", mapping: Mapping,
        prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Compiled incremental sweep. One C call runs one full sweep; the
        best-swap caches persist across calls and the C side repairs them
        eagerly after each accepted swap (same dirty-set argument as the
        NumPy path, same reference term order — see refine_kernel.c). The
        sweep loop, RNG permutation draws, and obs accounting stay in
        Python so all three kernels share their observable structure."""
        n, rng, dist, indptr, indices, weights, assign, cost = self._setup(
            mapping, allowed, ctx
        )
        cost = np.ascontiguousarray(cost, dtype=np.float64)
        dist = np.ascontiguousarray(dist, dtype=np.float64)
        c_assign = np.ascontiguousarray(assign, dtype=np.int64)
        c_indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        c_indices = np.ascontiguousarray(indices, dtype=np.int64)
        c_weights = np.ascontiguousarray(weights, dtype=np.float64)

        best_b = np.zeros(n, dtype=np.int64)
        best_val = np.zeros(n, dtype=np.float64)
        valid = np.zeros(n, dtype=np.uint8)
        stats = np.zeros(4, dtype=np.int64)  # visits, accepted, computed, folded

        sweeps = 0
        seen_visits = seen_accepted = 0
        for _sweep in range(self._max_sweeps):
            perm = np.ascontiguousarray(rng.permutation(n), dtype=np.int64)
            swapped = native.sweep(
                cost, dist, c_assign, c_indptr, c_indices, c_weights,
                perm, best_b, best_val, valid, stats,
            )
            sweeps += 1
            if prof is not None:
                visits, accepted = int(stats[0]), int(stats[1])
                self._record_sweep(
                    prof, n, sweeps,
                    visits - seen_visits, accepted - seen_accepted,
                )
                seen_visits, seen_accepted = visits, accepted
            if not swapped:
                break

        self._record_totals(prof, n, sweeps, int(stats[0]), int(stats[1]))
        if prof is not None:
            prof.count("refine.rows_computed", int(stats[2]))
            prof.count("refine.rows_folded", int(stats[3]))
        return mapping.with_assignment(c_assign.astype(assign.dtype, copy=False))

    def _refine_incremental_numpy(
        self, mapping: Mapping, prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Delta-structure sweep: cache every task's best swap partner and
        lazily *fold* the columns moved by accepted swaps back into the
        caches right before the sweep reads them (see module docstring for
        the dirty-set argument). A swap itself only appends its dirty
        columns to a pending list, so accepting a swap costs O(degree).

        Invariant maintained throughout: whenever the sweep reads a cache
        row it is the bitwise ``(argmin, min)`` of a fresh reference delta
        row — the fold recomputes exactly the changed columns with the same
        elementwise term order and merges them under argmin's lowest-index
        tie-breaking, so the sweep makes the same swap decisions (hence
        bit-identical refined mappings, pinned by the equivalence suite).
        """
        n, rng, dist, indptr, indices, weights, assign, cost = self._setup(
            mapping, allowed, ctx
        )

        ids = np.arange(n)
        bsize = min(self._block_size, n)
        # Incrementally maintained diagonal, exactly as in the vectorized
        # kernel (element copies only, never arithmetic).
        diag = cost[ids, assign]

        # The cache: per task, the index and value of its best swap partner
        # plus a validity bit. Invalid rows are recomputed (in blocks) when
        # the sweep reaches them.
        best_b = np.zeros(n, dtype=np.int64)
        best_val = np.zeros(n, dtype=np.float64)
        valid = np.zeros(n, dtype=bool)

        # Deferred-repair state. Columns whose delta entries moved since a
        # row was last brought current sit in ``pend[:plen]`` (append-only,
        # duplicates allowed); ``folded[r]`` is the pend length row ``r``
        # has already absorbed. A swap with a dirty set >= dense_cutoff
        # drops every cache instead (folding would cost a full recompute —
        # the dense-graph regime, where this kernel degenerates to the
        # vectorized one); once plen reaches fold_cap the pending list is
        # folded into every valid row at once and reset, bounding fold
        # width.
        dense_cutoff = max(8, n // 8)
        fold_cap = max(16, n // 8)
        pend = np.empty(fold_cap + 2 * dense_cutoff + 4, dtype=np.int64)
        plen = 0
        folded = np.zeros(n, dtype=np.int64)
        # Scratch row-position map reused across folds (reset after use).
        pos_of = np.full(n, -1, dtype=np.int64)

        sweeps = evaluations = accepted = 0
        blocks_precomputed = rows_computed = rows_folded = 0

        def compute_rows(block: np.ndarray) -> None:
            """Fill the cache for ``block`` from scratch — the same (B, n)
            expression as the vectorized kernel's ``block_deltas`` (identical
            elementwise term order, hence bitwise-identical rows)."""
            pa_blk = assign[block]
            deltas = cost[block[:, None], assign[None, :]]  # C[a, pb]
            deltas += cost[:, pa_blk].T                     # C[b, pa]
            deltas -= diag[block][:, None]                  # C[a, pa]
            deltas -= diag[None, :]                         # C[b, pb]
            rows = np.arange(len(block))
            los, his = indptr[block], indptr[block + 1]
            degs = his - los
            total = int(degs.sum())
            if total:
                offsets = np.repeat(his - np.cumsum(degs), degs)
                flat = offsets + np.arange(total)
                nbrs = indices[flat]
                rows_rep = np.repeat(rows, degs)
                deltas[rows_rep, nbrs] += (
                    2.0 * weights[flat] * dist[assign[block[rows_rep]], assign[nbrs]]
                )
            deltas[rows, block] = 0.0
            bmins = deltas.argmin(axis=1)
            best_b[block] = bmins
            best_val[block] = deltas[rows, bmins]
            valid[block] = True
            folded[block] = plen

        def fold_rows(rows: np.ndarray) -> np.ndarray:
            """Fold the pending (moved) columns into still-valid cache rows;
            returns the rows that need a full recompute instead — their
            cached argmin is itself among the moved columns, so the proof
            of minimality over the unchanged columns is gone.

            Rows are grouped by how much of the pending list they have
            already absorbed; each group recomputes only its unabsorbed
            columns, in the same term order as a full row, so the merged
            values are bitwise identical. The cached argmin of a kept row is
            outside its fold columns, hence still the exact lowest-index
            minimum over the unchanged columns; a candidate wins on a
            strictly smaller value, or an equal value at a smaller index
            (np.argmin's tie-breaking). np.unique sorts the fold columns, so
            the within-fold argmin is lowest-task-index as well.
            """
            nonlocal rows_folded
            refetch = []
            fu = folded[rows]
            for u in np.unique(fu):
                group = rows[fu == u]
                cols = np.unique(pend[u:plen])
                hit = np.isin(best_b[group], cols)
                if hit.any():
                    refetch.append(group[hit])
                    group = group[~hit]
                    if not len(group):
                        continue
                sub = cost[np.ix_(group, assign[cols])]     # C[a, pb]
                sub += cost[np.ix_(cols, assign[group])].T  # C[b, pa]
                sub -= diag[group][:, None]                 # C[a, pa]
                sub -= diag[cols][None, :]                  # C[b, pb]
                # Neighbor-edge corrections for all fold columns at once:
                # the (row, column) pairs are unique (a neighbor appears
                # once per CSR row), so the fancy-indexed += is exact. Edge
                # weights are symmetric in the CSR (undirected graph), so
                # reading w(t, d) from d's row matches the reference row's
                # own slice bit-for-bit.
                pos_of[group] = np.arange(len(group))
                los, his = indptr[cols], indptr[cols + 1]
                degs = his - los
                total = int(degs.sum())
                if total:
                    offsets = np.repeat(his - np.cumsum(degs), degs)
                    flat = offsets + np.arange(total)
                    nbrs = indices[flat]
                    ccol = np.repeat(np.arange(len(cols)), degs)
                    rpos = pos_of[nbrs]
                    sel = rpos >= 0
                    if sel.any():
                        sub[rpos[sel], ccol[sel]] += (
                            2.0 * weights[flat[sel]]
                            * dist[assign[nbrs[sel]], assign[cols[ccol[sel]]]]
                        )
                pos_of[group] = -1
                jmin = sub.argmin(axis=1)
                cand_val = sub[np.arange(len(group)), jmin]
                cand_b = cols[jmin]
                take = (cand_val < best_val[group]) | (
                    (cand_val == best_val[group]) & (cand_b < best_b[group])
                )
                upd = group[take]
                best_b[upd] = cand_b[take]
                best_val[upd] = cand_val[take]
                folded[group] = plen
                rows_folded += len(group)
            if refetch:
                return np.concatenate(refetch)
            return rows[:0]

        floor = min(bsize, 4)
        for _sweep in range(self._max_sweeps):
            swapped = False
            sweep_visits = sweep_accepted = 0
            if prof is not None:
                sweeps += 1
            perm = rng.permutation(n)
            pos = 0
            chunk = bsize
            while pos < n:
                rest = perm[pos:]
                # Trust scan: a visit with a current, non-improving cached
                # row is a no-op, so the whole remaining permutation is
                # scanned in a few vectorized comparisons and only the first
                # row that is either untrusted (invalid / behind on pending
                # folds) or a trusted improvement gets Python-level handling.
                # A fully converged sweep collapses to ONE such scan — the
                # structural win over the block sweep, which must still
                # *compute* every row each sweep.
                cand = ~valid[rest]
                if plen:
                    cand |= folded[rest] < plen
                unready = cand.copy()
                cand |= best_val[rest] < -1e-9
                i = int(cand.argmax())
                if not cand[i]:
                    # Everything left is current and non-improving.
                    if prof is not None:
                        evaluations += len(rest)
                        sweep_visits += len(rest)
                    break
                if unready[i]:
                    # Rows before i are visited (current, non-improving);
                    # bring a chunk starting at i current, then rescan. The
                    # chunk doubles while no swap interrupts, so the fold
                    # work between swaps stays proportional to the gap.
                    if prof is not None:
                        evaluations += i
                        sweep_visits += i
                    pos += i
                    block = rest[i:i + chunk]
                    bmask = valid[block]
                    need = block[~bmask]
                    if plen:
                        behind = block[bmask]
                        behind = behind[folded[behind] < plen]
                        if len(behind):
                            refetch = fold_rows(behind)
                            if len(refetch):
                                need = np.concatenate((need, refetch))
                    if len(need):
                        compute_rows(need)
                        blocks_precomputed += 1
                        rows_computed += len(need)
                    chunk = min(chunk * 2, n)
                    continue
                if prof is not None:
                    evaluations += i + 1
                    sweep_visits += i + 1
                    accepted += 1
                    sweep_accepted += 1
                a = int(rest[i])
                b = int(best_b[a])
                self._apply_swap(
                    a, b, assign, cost, dist, indptr, indices, weights,
                )
                # Columns whose delta entries moved: a, b and their
                # neighbors — exactly the tasks whose assign/cost-row state
                # _apply_swap mutated. Everything else is untouched.
                upd = np.concatenate((
                    (a, b),
                    indices[indptr[a]:indptr[a + 1]],
                    indices[indptr[b]:indptr[b + 1]],
                ))
                diag[upd] = cost[upd, assign[upd]]
                if len(upd) >= dense_cutoff:
                    # Dense dirty set: drop every cache, as the vectorized
                    # kernel does after a swap, to bound the wasted block
                    # work.
                    valid[:] = False
                    plen = 0
                    folded[:] = 0
                else:
                    valid[upd] = False
                    pend[plen:plen + len(upd)] = upd
                    plen += len(upd)
                    if plen >= fold_cap:
                        # Compact: bring every valid row current in one
                        # batched fold, then reset the pending list.
                        rows = np.flatnonzero(valid)
                        rows = rows[folded[rows] < plen]
                        if len(rows):
                            refetch = fold_rows(rows)
                            valid[refetch] = False
                        plen = 0
                        folded[:] = 0
                swapped = True
                chunk = floor
                pos += i + 1
            if prof is not None:
                self._record_sweep(prof, n, sweeps, sweep_visits, sweep_accepted)
            if not swapped:
                break

        self._record_totals(prof, n, sweeps, evaluations, accepted)
        if prof is not None:
            prof.count("refine.blocks_precomputed", blocks_precomputed)
            prof.count("refine.rows_computed", rows_computed)
            prof.count("refine.rows_folded", rows_folded)
        return mapping.with_assignment(assign)

    @staticmethod
    def _apply_swap(a: int, b: int, assign: np.ndarray, cost: np.ndarray,
                    dist: np.ndarray, indptr: np.ndarray, indices: np.ndarray,
                    weights: np.ndarray) -> None:
        """Swap the processors of ``a`` and ``b`` and patch the cost table.

        Only the rows of the neighbors of ``a`` and ``b`` reference the moved
        processors, so the patch costs ``O(p * (deg a + deg b))``.
        """
        pa, pb = int(assign[a]), int(assign[b])
        if a == b or pa == pb:
            # Degenerate "swap": nothing moves, the delta is exactly zero,
            # and patching the cost table would only accumulate rounding.
            return
        assign[a], assign[b] = pb, pa
        move = dist[pb] - dist[pa]  # how d(q, P(a)) changed, for every q
        for t, sign in ((a, 1.0), (b, -1.0)):
            lo, hi = indptr[t], indptr[t + 1]
            nbrs = indices[lo:hi]
            if nbrs.size:
                # One fanned-out row update per endpoint; neighbor ids are
                # unique within a CSR row, so the fancy-indexed += is exact.
                cost[nbrs] += (sign * weights[lo:hi])[:, None] * move
