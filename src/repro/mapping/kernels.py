"""Kernel selection for the mapper hot paths.

The performance-critical mappers (:class:`~repro.mapping.topolb.TopoLB`,
:class:`~repro.mapping.refine.RefineTopoLB`) ship two implementations of
their inner loops:

``"vectorized"`` (the default)
    Batched NumPy kernels: neighbor-row updates, stale-argmin repair, and
    swap-delta evaluation operate on whole index blocks per call instead of
    one Python-level element at a time. Produces **bit-identical
    assignments** to the reference kernel (enforced by
    ``tests/mapping/test_kernel_equivalence.py``).

``"reference"``
    The original scalar loops, kept verbatim as the executable
    specification. Slower, but trivially auditable against the paper's
    pseudocode; the equivalence suite and the ``BENCH_kernels_*.json``
    before/after profiles are both recorded against this path.

``"incremental"``
    The sweep-to-sweep delta structure in
    :class:`~repro.mapping.refine.RefineTopoLB`: per-task best-swap caches
    plus a dirty set keyed by the tasks an accepted swap touched, so each
    sweep after the first costs O(changed) instead of O(n^2). Also pinned
    bit-identical to ``"reference"`` by the equivalence suite. Mappers
    without an incremental formulation (TopoLB's cost-table construction
    has no sweep-to-sweep state to reuse) treat ``"incremental"`` as
    ``"vectorized"``, so the name is valid process-wide — e.g. for
    ``multilevel`` specs, where only the per-level refine has a delta
    structure to exploit.

Mappers take ``kernel=None`` to mean "use the process-wide default", which
:func:`set_default_kernel` flips (the CLI exposes it as ``--kernel``). See
``docs/PERFORMANCE.md`` for the kernel design notes.
"""

from __future__ import annotations

from repro.exceptions import MappingError

__all__ = [
    "KERNELS",
    "DEFAULT_KERNEL",
    "get_default_kernel",
    "set_default_kernel",
    "resolve_kernel",
]

#: Every kernel name any mapper understands.
KERNELS = ("vectorized", "reference", "incremental")

DEFAULT_KERNEL = "vectorized"

_default_kernel = DEFAULT_KERNEL


def get_default_kernel() -> str:
    """The process-wide kernel used when a mapper is built with ``kernel=None``."""
    return _default_kernel


def set_default_kernel(name: str) -> str:
    """Set the process-wide default kernel; returns the previous default.

    The choice only affects mappers constructed *after* the call (kernel is
    resolved at construction time, so a mapper's behavior never changes
    mid-run).
    """
    global _default_kernel
    if name not in KERNELS:
        raise MappingError(f"kernel must be one of {KERNELS}, got {name!r}")
    previous = _default_kernel
    _default_kernel = name
    return previous


def resolve_kernel(kernel: str | None, allowed: tuple[str, ...] = KERNELS) -> str:
    """Resolve a constructor's ``kernel`` argument against ``allowed``."""
    if kernel is None:
        kernel = _default_kernel
    if kernel not in allowed:
        raise MappingError(f"kernel must be one of {allowed}, got {kernel!r}")
    return kernel
