"""Space-filling-curve mapper — the geometric near-linear baseline.

Deveci et al. (*Geometric Partitioning and Ordering Strategies for Task
Mapping*, PAPERS.md) show that for coordinate-bearing task graphs a
space-filling-curve ordering is a strong, near-linear-time mapping baseline:
sort the tasks along a Hilbert (or Morton) curve through their coordinates,
sort the processors along a locality-preserving walk of the machine, and
match the two orders position by position. Nearby tasks land on nearby
processors without ever touching the communication graph.

Tasks must carry coordinates (:attr:`~repro.taskgraph.graph.TaskGraph.
coords`, attached by :func:`~repro.taskgraph.patterns.mesh_pattern`).
Coordinates are quantized per axis to a ``2**bits`` grid; the Hilbert index
is computed with Skilling's transpose algorithm (arbitrary dimension, pure
NumPy), Morton by plain bit interleaving. The processor side uses the same
curve over grid coordinates for mesh/torus machines and a BFS walk
elsewhere (matching :class:`~repro.mapping.linear_order
.LinearOrderingMapper`'s fallback).

Spec: ``sfc:curve=hilbert`` (default) or ``sfc:curve=morton``; alias
``SFCMap``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping, resolve_allowed
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.topology.grid import GridTopology

__all__ = ["SFCMapper", "hilbert_indices", "morton_indices"]

#: Quantization resolution per axis; 16 bits x up to 4 axes packs into the
#: uint64 curve index without overflow.
_BITS = 16


def _quantize(coords: np.ndarray, bits: int = _BITS) -> np.ndarray:
    """Shift/scale coordinates onto a non-negative ``2**bits`` integer grid.

    Integer lattices that already fit (the mesh-pattern case) pass through
    exactly; anything else is scaled per axis and rounded.
    """
    c = np.asarray(coords, dtype=np.float64)
    if c.ndim != 2:
        raise MappingError(f"coords must be 2-D (tasks x axes), got {c.shape}")
    c = c - c.min(axis=0)
    limit = float((1 << bits) - 1)
    if not ((c == np.floor(c)).all() and c.max(initial=0.0) <= limit):
        span = c.max(axis=0)
        span[span == 0] = 1.0
        c = np.floor(c / span * limit + 0.5)
    return c.astype(np.uint64)


def morton_indices(coords: np.ndarray, bits: int = _BITS) -> np.ndarray:
    """Morton (Z-order) index of each coordinate row, as uint64."""
    q = _quantize(coords, bits)
    n, d = q.shape
    out = np.zeros(n, dtype=np.uint64)
    for b in range(bits - 1, -1, -1):
        for i in range(d):
            out = (out << np.uint64(1)) | ((q[:, i] >> np.uint64(b)) & np.uint64(1))
    return out


def hilbert_indices(coords: np.ndarray, bits: int = _BITS) -> np.ndarray:
    """Hilbert-curve index of each coordinate row, as uint64.

    Skilling's transpose algorithm (AIP Conf. Proc. 707, 2004), vectorized
    over the rows: undo excess-work rotations from the top bit down, Gray
    encode, then interleave the transposed index bits.
    """
    q = _quantize(coords, bits)
    n, d = q.shape
    if d == 1:
        return q[:, 0].copy()
    x = q.copy()
    one = np.uint64(1)
    m = np.uint64(1) << np.uint64(bits - 1)
    # Inverse undo: top-down rotation/reflection per bit plane.
    qbit = m
    while qbit > one:
        p = qbit - one
        for i in range(d):
            flip = (x[:, i] & qbit) != 0
            x[flip, 0] ^= p
            keep = ~flip
            t = (x[keep, 0] ^ x[keep, i]) & p
            x[keep, 0] ^= t
            x[keep, i] ^= t
        qbit >>= one
    # Gray encode.
    for i in range(1, d):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.uint64)
    qbit = m
    while qbit > one:
        sel = (x[:, d - 1] & qbit) != 0
        t[sel] ^= qbit - one
        qbit >>= one
    for i in range(d):
        x[:, i] ^= t
    # Interleave the transposed bits, most significant plane first.
    out = np.zeros(n, dtype=np.uint64)
    for b in range(bits - 1, -1, -1):
        for i in range(d):
            out = (out << one) | ((x[:, i] >> np.uint64(b)) & one)
    return out


_CURVES = {"hilbert": hilbert_indices, "morton": morton_indices}


class SFCMapper(Mapper):
    """Match SFC-ordered tasks to locality-ordered processors."""

    strategy_name = "SFCMap"

    def __init__(self, curve: str = "hilbert"):
        if curve not in _CURVES:
            raise MappingError(
                f"unknown space-filling curve {curve!r}; "
                f"expected one of {sorted(_CURVES)}"
            )
        self._curve = curve

    @property
    def curve(self) -> str:
        """The curve ordering both sides: ``"hilbert"`` or ``"morton"``."""
        return self._curve

    def map(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
    ) -> Mapping:
        allowed = resolve_allowed(topology, allowed)
        n = self._check_sizes(graph, topology, allowed)
        coords = graph.coords
        if coords is None:
            raise MappingError(
                "SFCMapper needs per-task coordinates (graph.coords); "
                "mesh_pattern graphs carry them, or attach_coords() yours"
            )
        index = _CURVES[self._curve](coords)
        task_order = np.argsort(index, kind="stable")
        proc_order = self._proc_order(topology)
        if allowed is not None:
            proc_order = proc_order[allowed[proc_order]]
        assignment = np.empty(n, dtype=np.int64)
        assignment[task_order] = proc_order[:n]
        return Mapping(graph, topology, assignment)

    def _proc_order(self, topology: Topology) -> np.ndarray:
        if isinstance(topology, GridTopology):
            index = _CURVES[self._curve](
                topology.coords_array().astype(np.float64)
            )
            return np.argsort(index, kind="stable").astype(np.int64)
        from repro.mapping.linear_order import LinearOrderingMapper

        return LinearOrderingMapper._proc_order(topology)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SFCMapper curve={self._curve}>"
