"""TopoCentLB — the simpler, faster comparison strategy (Section 4.5).

Cycle 1 places the most-communicating task; every later cycle selects the
unplaced task with the maximum total communication volume to the *already
placed* set (an addressable max-heap gives the paper's ``O(log p)`` selection
and key bumps) and puts it on the free processor minimizing its first-order
cost — the hop-bytes to its placed neighbors. This is Baba et al.'s
``(P3, P4)`` heuristic pair and uses the first-order estimation function;
unlike TopoLB it ranks tasks by the cost itself rather than by criticality.
Total running time ``O(p |Et|)``.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.mapping.base import Mapper, Mapping, resolve_allowed
from repro.mapping.context import MappingContext, context_for
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.priority_queue import AddressableMaxHeap

__all__ = ["TopoCentLB"]


class TopoCentLB(Mapper):
    """Heap-driven greedy topology-aware mapper (comparison baseline)."""

    strategy_name = "TopoCentLB"

    def map(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
        *,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Map ``graph`` onto ``topology``; ``allowed`` restricts placement
        to a processor mask (auto-derived on degraded machines). ``ctx``
        supplies shared per-(graph, topology) tables."""
        allowed = resolve_allowed(topology, allowed)
        if ctx is None:
            ctx = context_for(graph, topology)
        prof = obs.active()
        if prof is None:
            return self._run(graph, topology, allowed=allowed, ctx=ctx)
        with prof.timer("topocentlb.map"):
            return self._run(graph, topology, prof, allowed=allowed, ctx=ctx)

    def _run(
        self,
        graph: TaskGraph,
        topology: Topology,
        prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        if ctx is None:
            ctx = context_for(graph, topology)
        n = self._check_sizes(graph, topology, allowed)
        p = topology.num_nodes
        # Exact cast either way: hop distances are small integers (or already
        # float64 on weighted machines), so the float64 view from the shared
        # cache is bitwise equal to astype()ing the default matrix.
        dist = ctx.distance_matrix(np.float64)
        indptr, indices, weights = ctx.csr_arrays()

        # Free-processor mask; a masked run simply starts with the dead
        # processors already consumed — the greedy cycle body is unchanged.
        avail = np.ones(p, dtype=bool) if allowed is None else allowed.copy()
        assignment = np.full(n, -1, dtype=np.int64)

        # Heap key: communication volume to the placed set. Seed keys with a
        # sub-resolution multiple of each task's total volume so (a) the very
        # first pop is the globally most-communicating task (paper's cycle 1
        # rule) without a special case and (b) placed-volume ties break toward
        # chattier tasks deterministically. The perturbation stays below the
        # smallest edge weight, so it can never outvote a real key difference
        # of one whole edge.
        volumes = graph.comm_volumes()
        if graph.num_edges:
            min_w = float(graph.edge_arrays()[2].min())
            tie_epsilon = 0.5 * min_w / (1.0 + float(volumes.max()))
        else:
            tie_epsilon = 0.0
        heap = AddressableMaxHeap((t, tie_epsilon * volumes[t]) for t in range(n))

        anchor = -1  # processor of the first-placed task; compactness anchor
        cycles = heap_updates = seed_placements = 0
        for _cycle in range(n):
            tk, _key = heap.pop()
            tk = int(tk)

            # First-order cost of tk on every free processor.
            lo, hi = indptr[tk], indptr[tk + 1]
            nbrs = indices[lo:hi]
            wts = weights[lo:hi]
            placed_mask = assignment[nbrs] >= 0
            free_ids = np.flatnonzero(avail)
            if placed_mask.any():
                rows = dist[assignment[nbrs[placed_mask]]][:, free_ids]
                cost = wts[placed_mask] @ rows
                # The first-order cost frequently ties (several free
                # processors equidistant from the placed neighbors); break
                # ties toward the growth anchor so the placed region stays
                # compact instead of fraying — raggedness here compounds in
                # later cycles.
                ties = np.flatnonzero(cost <= cost.min())
                pk = int(free_ids[ties[np.argmin(dist[anchor][free_ids[ties]])]])
            else:
                # No placed neighbor yet (first task, or isolated component):
                # put it on the most central free processor so growth has room.
                centrality = dist[np.ix_(free_ids, free_ids)].mean(axis=1)
                pk = int(free_ids[np.argmin(centrality)])
                if anchor < 0:
                    anchor = pk

            assignment[tk] = pk
            avail[pk] = False
            if prof is not None:
                cycles += 1
                heap_updates += int(len(nbrs) - np.count_nonzero(placed_mask))
                if not placed_mask.any():
                    seed_placements += 1

            # Bump the placed-communication keys of tk's unplaced neighbors.
            for j, c in zip(nbrs, wts):
                j = int(j)
                if assignment[j] < 0:
                    heap.update(j, heap.key(j) + float(c))

        if prof is not None:
            prof.count("topocentlb.cycles", cycles)
            prof.count("topocentlb.heap_updates", heap_updates)
            prof.count("topocentlb.seed_placements", seed_placements)
        return Mapping(graph, topology, assignment)
