"""MappingContext — shared per-(graph, topology) state for mappers and metrics.

Every mapper used to re-derive the same inputs on entry: CSR edge arrays from
the task graph, the topology distance matrix (per dtype), the average /
centered distance tables behind the estimation functions, and — on degraded
machines — the allowed-processor mask. A :class:`MappingContext` computes each
of these once per (graph, topology) pair and hands out the *same* arrays the
underlying caches would have produced, so threading a context through a
mapper is bit-for-bit equivalent to the mapper fetching its own state.

The context is deliberately a thin veneer over the existing caches
(``TaskGraph`` builds its CSR arrays once; ``repro.topology.cache`` shares
distance tables across same-shaped machines). What it adds:

* one object to pass around instead of four lookups per mapper;
* memoized *derived* state that had no cache before — per-assignment edge
  distances and the canonical metrics block (hop-bytes, hops-per-byte, load
  imbalance, dilation) computed from a **single** distance gather instead of
  one per metric;
* the degraded-machine allowed mask, resolved once via
  :func:`~repro.mapping.base.resolve_allowed`.

Use :func:`context_for` to get the process-wide shared instance for a
(graph, topology) pair; construct :class:`MappingContext` directly only for
throwaway state.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

__all__ = ["MappingContext", "context_for"]


class MappingContext:
    """Shared state for mapping one task graph onto one topology.

    All accessors are lazy and cached; arrays returned are the read-only
    shared instances from the graph/topology caches — never copies — so a
    mapper reading through the context sees exactly the arrays it would have
    derived itself.
    """

    def __init__(self, graph: TaskGraph, topology: Topology):
        self._graph = graph
        self._topology = topology
        self._allowed: np.ndarray | None | bool = False  # False = unresolved
        self._avg_distance: dict[object, np.ndarray] = {}

    # ------------------------------------------------------------ identities
    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def topology(self) -> Topology:
        return self._topology

    # ---------------------------------------------------------- graph tables
    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, weights)`` CSR adjacency of the task graph."""
        return self._graph.csr_arrays()

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(u, v, w)`` dedup'd undirected edge list of the task graph."""
        return self._graph.edge_arrays()

    def adjacency_csr(self):
        """The task graph's SciPy-compatible CSR adjacency operator."""
        return self._graph.adjacency_csr()

    # ------------------------------------------------------- topology tables
    def distance_matrix(self, dtype: np.dtype | type = np.int32) -> np.ndarray:
        """The topology's hop-distance matrix in ``dtype`` (shared cache)."""
        return self._topology.distance_matrix(dtype)

    def average_distance_vector(
        self, subset: np.ndarray | None = None
    ) -> np.ndarray:
        """Mean distance from each processor to ``subset`` (default: all)."""
        from repro.mapping.estimation import average_distance_vector

        key = None if subset is None else subset.tobytes()
        vec = self._avg_distance.get(key)
        if vec is None:
            vec = average_distance_vector(self._topology, subset)
            self._avg_distance[key] = vec
        return vec

    def centered_distance_matrix(
        self, dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        """Doubly-centered distance matrix (third-order estimator input)."""
        from repro.mapping.estimation import centered_distance_matrix

        return centered_distance_matrix(self._topology, dtype)

    def allowed(self) -> np.ndarray | None:
        """The degraded-machine healthy mask, or ``None`` when pristine.

        Resolved once via :func:`~repro.mapping.base.resolve_allowed` with no
        explicit mask — i.e. auto-derived from a
        :class:`~repro.faults.DegradedTopology`.
        """
        if self._allowed is False:
            from repro.mapping.base import resolve_allowed

            self._allowed = resolve_allowed(self._topology, None)
        return self._allowed

    # ------------------------------------------------------- derived metrics
    def edge_distances(self, assignment: Sequence[int]) -> np.ndarray:
        """Hop distance of each task-graph edge under ``assignment``.

        The single gather every metric shares; see
        :func:`repro.mapping.metrics.metrics_block`.
        """
        from repro.mapping.metrics import _as_assignment, _edge_distances

        arr = _as_assignment(self._graph, self._topology, assignment)
        u, v, w = self.edge_arrays()
        if len(w) == 0:
            return np.zeros(0, dtype=np.float64)
        return _edge_distances(self._topology, arr[u], arr[v])

    def hop_bytes(self, assignment: Sequence[int]) -> float:
        """Total hop-bytes of ``assignment`` (the paper's Section 3 metric)."""
        _, _, w = self.edge_arrays()
        if len(w) == 0:
            return 0.0
        return float(np.dot(w, self.edge_distances(assignment)))

    def metrics(self, assignment: Sequence[int]) -> dict[str, float]:
        """Canonical metrics block; see :func:`repro.mapping.metrics.metrics_block`."""
        from repro.mapping.metrics import metrics_block

        return metrics_block(self._graph, self._topology, assignment, ctx=self)


#: Process-wide (graph, topology) -> MappingContext cache. Strong references
#: with a small LRU cap: entries pin their graph/topology (so ids stay valid
#: for the identity check) and the cap bounds the pinning to a handful of
#: recently used pairs — the working set of any CLI run or experiment sweep.
_CACHE_CAP = 16
_CACHE: OrderedDict[tuple[int, int], MappingContext] = OrderedDict()


def context_for(graph: TaskGraph, topology: Topology) -> MappingContext:
    """The shared :class:`MappingContext` for ``(graph, topology)``.

    Repeated calls with the same objects return the same context, so every
    layer (engine, pipeline, metrics, runtime replay) accumulates derived
    state in one place instead of re-deriving it.
    """
    key = (id(graph), id(topology))
    ctx = _CACHE.get(key)
    if ctx is not None and ctx.graph is graph and ctx.topology is topology:
        _CACHE.move_to_end(key)
        return ctx
    ctx = MappingContext(graph, topology)
    _CACHE[key] = ctx
    _CACHE.move_to_end(key)
    while len(_CACHE) > _CACHE_CAP:
        _CACHE.popitem(last=False)
    return ctx
