"""Lower bounds on hop-bytes — how close to optimal is a mapping?

The mapping problem is NP-complete, so exact optima are unavailable at
scale; these bounds let experiments report "TopoLB within x% of optimal"
instead of only "y% better than random".

Two bounds, both valid for *bijective* mappings:

* **trivial bound** — every task-graph edge joins distinct processors, so
  each byte crosses at least one link: ``HB >= total_bytes``.
* **degree-matching bound** — task ``t``'s neighbors occupy ``deg(t)``
  *distinct* processors, so the distances from ``t``'s processor to them are
  at least the ``deg(t)`` smallest nonzero distances available anywhere in
  the machine; matching t's heaviest edges with the smallest distances
  (a rearrangement-inequality argument) bounds HB(t) from below, and
  ``HB = (1/2) sum HB(t)`` does the rest.

For a 2D Jacobi pattern on a torus the degree-matching bound equals
``total_bytes`` exactly (four neighbors, four distance-1 slots), certifying
TopoLB's 1.0 hops-per-byte as optimal rather than merely good.
"""

from __future__ import annotations

import numpy as np

from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

__all__ = ["hop_bytes_lower_bound", "optimality_gap"]


def _distance_profile(topology: Topology) -> np.ndarray:
    """Sorted nonzero distances from the best-connected processor.

    For the bound we may use, per task, the most favorable distance
    multiset any processor offers; taking the elementwise minimum over
    processors of the sorted profiles keeps the bound valid (and on
    vertex-transitive machines all profiles coincide anyway).
    """
    p = topology.num_nodes
    profiles = np.empty((p, p - 1), dtype=np.float64)
    for v in range(p):
        row = np.sort(topology.distance_row(v))[1:]  # drop the self 0
        profiles[v] = row
    return profiles.min(axis=0)


def hop_bytes_lower_bound(graph: TaskGraph, topology: Topology) -> float:
    """A certified lower bound on hop-bytes over all bijective mappings."""
    if graph.num_tasks != topology.num_nodes or topology.num_nodes < 2:
        # Many-to-one mappings can hide bytes on-processor; only the trivial
        # zero bound is safe there.
        return 0.0
    profile = _distance_profile(topology)
    total = 0.0
    for t in range(graph.num_tasks):
        _, weights = graph.neighbor_slice(t)
        if len(weights) == 0:
            continue
        # Heaviest edges get the smallest available distances.
        w_sorted = np.sort(weights)[::-1]
        total += float(np.dot(w_sorted, profile[: len(w_sorted)]))
    bound = total / 2.0
    return max(bound, graph.total_bytes)


def optimality_gap(mapping) -> float:
    """``hop_bytes / lower_bound`` (1.0 certifies optimality; inf if LB is 0)."""
    bound = hop_bytes_lower_bound(mapping.graph, mapping.topology)
    if bound == 0:
        return float("inf") if mapping.hop_bytes > 0 else 1.0
    return mapping.hop_bytes / bound
