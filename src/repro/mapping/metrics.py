"""Mapping-quality metrics: hop-bytes, hops-per-byte, link loads, dilation.

Hop-bytes (Section 3 of the paper) is the evaluation function every mapper
here minimizes::

    HB(Gt, Gp, P) = sum over edges e_ab of c_ab * d_p(P(a), P(b))

Per-link loads additionally resolve each task-graph edge onto the links of
its deterministic route — the quantity whose maximum drives contention.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import MappingError
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

if TYPE_CHECKING:  # circular at runtime: context imports metrics helpers
    from repro.mapping.context import MappingContext

__all__ = [
    "hop_bytes",
    "hops_per_byte",
    "hops_ratio",
    "per_task_hop_bytes",
    "per_link_loads",
    "dilation_stats",
    "dilation_histogram",
    "processor_loads",
    "load_imbalance",
    "metrics_block",
]

#: Above this processor count we avoid materializing the full distance matrix.
_MATRIX_LIMIT = 8192


def _as_assignment(graph: TaskGraph, topology: Topology, assignment: Sequence[int]) -> np.ndarray:
    arr = np.asarray(assignment, dtype=np.int64)
    if arr.shape != (graph.num_tasks,):
        raise MappingError(
            f"assignment must have shape ({graph.num_tasks},), got {arr.shape}"
        )
    if len(arr) and (arr.min() < 0 or arr.max() >= topology.num_nodes):
        raise MappingError("assignment references processors outside the topology")
    return arr


def _edge_distances(topology: Topology, pu: np.ndarray, pv: np.ndarray) -> np.ndarray:
    """Hop distances for endpoint-processor arrays ``pu``/``pv`` (vectorized)."""
    if topology.num_nodes <= _MATRIX_LIMIT:
        mat = topology.distance_matrix()
        return mat[pu, pv].astype(np.float64)
    # Large machine: gather one distance row per distinct source processor.
    dist = np.empty(len(pu), dtype=np.float64)
    order = np.argsort(pu, kind="stable")
    sorted_pu = pu[order]
    boundaries = np.flatnonzero(np.diff(sorted_pu)) + 1
    for chunk in np.split(order, boundaries):
        row = topology.distance_row(int(pu[chunk[0]]))
        dist[chunk] = row[pv[chunk]]
    return dist


def hop_bytes(graph: TaskGraph, topology: Topology, assignment: Sequence[int]) -> float:
    """Total hop-bytes of ``assignment`` (Section 3 metric)."""
    arr = _as_assignment(graph, topology, assignment)
    u, v, w = graph.edge_arrays()
    if len(w) == 0:
        return 0.0
    return float(np.dot(w, _edge_distances(topology, arr[u], arr[v])))


def hops_ratio(hop_bytes_value: float, total_bytes: float) -> float:
    """``hop_bytes / total_bytes`` with the zero-traffic convention.

    The *single* definition of the guard: a graph that communicates nothing
    travels zero hops per byte. Every consumer (:func:`hops_per_byte`,
    :func:`metrics_block`, :attr:`repro.mapping.base.Mapping.hops_per_byte`)
    divides through this helper so the semantics cannot drift.
    """
    if total_bytes == 0:
        return 0.0
    return hop_bytes_value / total_bytes


def hops_per_byte(graph: TaskGraph, topology: Topology, assignment: Sequence[int]) -> float:
    """Average number of links each byte crosses: hop-bytes / total bytes."""
    return hops_ratio(
        hop_bytes(graph, topology, assignment), graph.total_bytes
    )


def per_task_hop_bytes(
    graph: TaskGraph, topology: Topology, assignment: Sequence[int]
) -> np.ndarray:
    """HB(t) per task; ``sum / 2 == hop_bytes`` (the paper's additivity identity)."""
    arr = _as_assignment(graph, topology, assignment)
    u, v, w = graph.edge_arrays()
    out = np.zeros(graph.num_tasks, dtype=np.float64)
    if len(w):
        contrib = w * _edge_distances(topology, arr[u], arr[v])
        np.add.at(out, u, contrib)
        np.add.at(out, v, contrib)
    return out


def per_link_loads(
    graph: TaskGraph, topology: Topology, assignment: Sequence[int]
) -> dict[tuple[int, int], float]:
    """Bytes crossing each *directed* link under deterministic routing.

    Requires a route-capable (link-graph) machine: links are edges of
    ``topology.link_graph()``, so on an indirect network (fat-tree,
    dragonfly) the keys include switch-level links. Intra-processor edges
    load no links. The max over this dict is the contention bottleneck the
    paper's mapping strategy relieves.
    """
    arr = _as_assignment(graph, topology, assignment)
    loads: dict[tuple[int, int], float] = {}
    for a, b, w in graph.edges():
        pa, pb = int(arr[a]), int(arr[b])
        if pa == pb:
            continue
        # Traffic flows both ways on an undirected task edge; charge half
        # the volume along each direction's route.
        for src, dst, vol in ((pa, pb, w / 2.0), (pb, pa, w / 2.0)):
            for link in topology.route_links(src, dst):
                loads[link] = loads.get(link, 0.0) + vol
    return loads


def dilation_stats(
    graph: TaskGraph, topology: Topology, assignment: Sequence[int]
) -> dict[str, float]:
    """Edge-dilation summary: max / mean / byte-weighted mean hop distance."""
    arr = _as_assignment(graph, topology, assignment)
    u, v, w = graph.edge_arrays()
    if len(w) == 0:
        return {"max": 0.0, "mean": 0.0, "weighted_mean": 0.0}
    dist = _edge_distances(topology, arr[u], arr[v])
    return {
        "max": float(dist.max()),
        "mean": float(dist.mean()),
        "weighted_mean": float(np.dot(w, dist) / w.sum()) if w.sum() else 0.0,
    }


def dilation_histogram(
    graph: TaskGraph, topology: Topology, assignment: Sequence[int]
) -> dict[int | float, float]:
    """Bytes communicated at each hop distance: ``{distance: bytes}``.

    The distributional view behind hops-per-byte: an ideal stencil mapping
    concentrates all bytes at distance 1, a random mapping spreads them to
    the machine's distance distribution. Distance 0 collects intra-processor
    bytes (many-to-one mappings).

    Key types: a key is ``int`` whenever the distance is integral — always
    the case on hop-metric machines — and ``float`` only for fractional
    distances on weighted machines. A weighted machine can therefore mix
    both (e.g. links of cost 1.5 give keys ``1.5`` and ``3``); consumers
    that need uniform keys should normalize with ``float(key)``, which is
    lossless and collision-free because every ``int`` key is produced
    *instead of* (never alongside) its ``float`` equivalent.
    """
    arr = _as_assignment(graph, topology, assignment)
    u, v, w = graph.edge_arrays()
    if len(w) == 0:
        return {}
    dist = _edge_distances(topology, arr[u], arr[v])
    out: dict[int | float, float] = {}
    for d in np.unique(dist):
        key = int(d) if float(d).is_integer() else float(d)
        out[key] = float(w[dist == d].sum())
    return out


def processor_loads(
    graph: TaskGraph, topology: Topology, assignment: Sequence[int]
) -> np.ndarray:
    """Computation load per processor (sum of hosted task weights)."""
    arr = _as_assignment(graph, topology, assignment)
    return np.bincount(arr, weights=graph.vertex_weights, minlength=topology.num_nodes)


def load_imbalance(
    graph: TaskGraph, topology: Topology, assignment: Sequence[int]
) -> float:
    """Makespan ratio ``max_load / mean_load`` (1.0 is perfectly balanced)."""
    loads = processor_loads(graph, topology, assignment)
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def metrics_block(
    graph: TaskGraph,
    topology: Topology,
    assignment: Sequence[int],
    *,
    ctx: MappingContext | None = None,
) -> dict[str, float]:
    """The canonical per-mapping metrics block, from one distance gather.

    Every consumer that used to call :func:`hop_bytes`,
    :func:`hops_per_byte`, :func:`load_imbalance`, and
    :func:`dilation_stats` separately paid one edge-distance gather per
    metric; this computes the gather once and derives all of them with the
    same floating-point expressions, so values are bitwise identical to the
    individual functions.

    Keys: ``hop_bytes``, ``hops_per_byte``, ``load_imbalance``,
    ``max_dilation``, ``mean_dilation``, ``weighted_dilation``.
    """
    if ctx is None:
        from repro.mapping.context import context_for

        ctx = context_for(graph, topology)
    arr = _as_assignment(graph, topology, assignment)
    u, v, w = ctx.edge_arrays()
    total = graph.total_bytes
    if len(w) == 0:
        hb = 0.0
        dil = {"max": 0.0, "mean": 0.0, "weighted_mean": 0.0}
    else:
        dist = _edge_distances(topology, arr[u], arr[v])
        hb = float(np.dot(w, dist))
        dil = {
            "max": float(dist.max()),
            "mean": float(dist.mean()),
            "weighted_mean": float(np.dot(w, dist) / w.sum()) if w.sum() else 0.0,
        }
    return {
        "hop_bytes": hb,
        "hops_per_byte": hops_ratio(hb, total),
        "load_imbalance": load_imbalance(graph, topology, arr),
        "max_dilation": dil["max"],
        "mean_dilation": dil["mean"],
        "weighted_dilation": dil["weighted_mean"],
    }
