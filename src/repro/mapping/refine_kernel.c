/* refine_kernel.c — compiled sweep for RefineTopoLB's "incremental" kernel.
 *
 * One call runs ONE full sweep of the pairwise-swap refiner with the
 * incremental delta structure: per-task best-swap caches (best_b, best_val,
 * valid) that persist across sweeps, invalidated/folded by the dirty set of
 * each accepted swap ({a, b} ∪ N(a) ∪ N(b) — exactly the rows/columns the
 * cost-table patch mutates).
 *
 * Bit-identity contract: every floating-point expression mirrors the
 * reference kernel's NumPy element order exactly (see
 * repro/mapping/refine.py, _refine_reference and _apply_swap), and the
 * build uses -ffp-contract=off so no fused-multiply-add changes rounding.
 * The equivalence suite pins compiled and reference assignments to be
 * bitwise equal.
 *
 * Compiled on demand by repro.mapping._native via the system C compiler;
 * when no toolchain is available the pure-NumPy incremental path in
 * refine.py runs instead.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

/* Reference row evaluation for task `a`: delta against every candidate b,
 * written into buf[0..n), then first-minimum argmin (np.argmin semantics).
 * Term order per element:  ((C[a,pb] + C[b,pa]) - C[a,pa]) - C[b,pb],
 * then += (2.0 * w) * dist[pa, pb'] at neighbor positions, then
 * buf[a] = 0.0. */
static void compute_row(i64 n, i64 p, const double *cost, const double *dist,
                        const i64 *assign, const i64 *indptr,
                        const i64 *indices, const double *weights,
                        double *buf, i64 a, i64 *bb_out, double *bv_out)
{
    const i64 pa = assign[a];
    const double capa = cost[a * p + pa];
    const double *arow = cost + a * p;
    for (i64 b = 0; b < n; b++) {
        const i64 pb = assign[b];
        buf[b] = ((arow[pb] + cost[b * p + pa]) - capa) - cost[b * p + pb];
    }
    const double *drow = dist + pa * p;
    for (i64 k = indptr[a]; k < indptr[a + 1]; k++) {
        const i64 b = indices[k];
        buf[b] += (2.0 * weights[k]) * drow[assign[b]];
    }
    buf[a] = 0.0;
    i64 bb = 0;
    double bv = buf[0];
    for (i64 b = 1; b < n; b++) {
        if (buf[b] < bv) {
            bv = buf[b];
            bb = b;
        }
    }
    *bb_out = bb;
    *bv_out = bv;
}

/* Swap the processors of a and b and patch the cost table, mirroring
 * RefineTopoLB._apply_swap: cost[r, q] += (sign * w_r) * (d[pb,q] - d[pa,q])
 * for every neighbor r of a (sign +1) and of b (sign -1). */
static void apply_swap(i64 p, double *cost, const double *dist, i64 *assign,
                       const i64 *indptr, const i64 *indices,
                       const double *weights, i64 a, i64 b)
{
    const i64 pa = assign[a], pb = assign[b];
    if (a == b || pa == pb)
        return;
    assign[a] = pb;
    assign[b] = pa;
    const double *db = dist + pb * p;
    const double *da = dist + pa * p;
    for (int side = 0; side < 2; side++) {
        const i64 t = side ? b : a;
        const double sign = side ? -1.0 : 1.0;
        for (i64 k = indptr[t]; k < indptr[t + 1]; k++) {
            double *crow = cost + indices[k] * p;
            const double sw = sign * weights[k];
            for (i64 q = 0; q < p; q++)
                crow[q] += sw * (db[q] - da[q]);
        }
    }
}

static int cmp_i64(const void *x, const void *y)
{
    const i64 a = *(const i64 *)x, b = *(const i64 *)y;
    return (a > b) - (a < b);
}

/* Run one sweep over perm[0..n). Caches best_b/best_val/valid persist
 * across calls (the caller owns them, zero-initialised before sweep 1).
 * stats (cumulative): [0] visits, [1] accepted swaps, [2] rows computed
 * from scratch, [3] rows folded. Returns 1 if any swap was accepted. */
i64 refine_sweep_incremental(i64 n, i64 p, double *cost, const double *dist,
                             i64 *assign, const i64 *indptr,
                             const i64 *indices, const double *weights,
                             const i64 *perm, i64 *best_b, double *best_val,
                             unsigned char *valid, i64 *stats)
{
    double *buf = (double *)malloc((size_t)n * sizeof(double));
    i64 *touched = (i64 *)malloc((size_t)(2 * n + 2) * sizeof(i64));
    i64 *pos = (i64 *)calloc((size_t)n, sizeof(i64));
    double *corr = (double *)malloc((size_t)n * sizeof(double));
    unsigned char *cset = (unsigned char *)calloc((size_t)n, 1);
    if (!buf || !touched || !pos || !corr || !cset) {
        free(buf); free(touched); free(pos); free(corr); free(cset);
        return -1;
    }

    i64 swapped = 0;
    for (i64 k = 0; k < n; k++) {
        const i64 a = perm[k];
        if (!valid[a]) {
            compute_row(n, p, cost, dist, assign, indptr, indices, weights,
                        buf, a, &best_b[a], &best_val[a]);
            valid[a] = 1;
            stats[2]++;
        }
        stats[0]++;
        if (!(best_val[a] < -1e-9))
            continue;
        const i64 b = best_b[a];
        stats[1]++;
        swapped = 1;
        apply_swap(p, cost, dist, assign, indptr, indices, weights, a, b);

        /* Dirty set: a, b and their neighbors — sorted unique so the fold
         * scans candidates in ascending task order (argmin tie-break). */
        i64 m = 0;
        touched[m++] = a;
        touched[m++] = b;
        for (i64 t = indptr[a]; t < indptr[a + 1]; t++)
            touched[m++] = indices[t];
        for (i64 t = indptr[b]; t < indptr[b + 1]; t++)
            touched[m++] = indices[t];
        qsort(touched, (size_t)m, sizeof(i64), cmp_i64);
        i64 mu = 0;
        for (i64 j = 0; j < m; j++)
            if (j == 0 || touched[j] != touched[j - 1])
                touched[mu++] = touched[j];
        m = mu;

        for (i64 j = 0; j < m; j++)
            valid[touched[j]] = 0;

        if (m * 4 >= n) {
            /* Dense dirty set: folding costs as much as recomputing, so
             * drop every cache (rows rebuild lazily on their next visit). */
            memset(valid, 0, (size_t)n);
            continue;
        }
        for (i64 j = 0; j < m; j++)
            pos[touched[j]] = j + 1;

        /* Fold the moved columns into every still-valid cache row: only
         * entries at the dirty columns changed, and they are recomputed
         * with the exact reference term order, so the merged (argmin, min)
         * stays bitwise equal to a fresh row. Rows whose cached argmin is
         * itself dirty lost their proof of minimality and recompute on
         * their next visit instead. */
        for (i64 r = 0; r < n; r++) {
            if (!valid[r])
                continue;
            if (pos[best_b[r]]) {
                valid[r] = 0;
                continue;
            }
            const i64 pr = assign[r];
            const double crr = cost[r * p + pr];
            const double *rrow = cost + r * p;
            const double *drow = dist + pr * p;
            for (i64 t = indptr[r]; t < indptr[r + 1]; t++) {
                const i64 j = pos[indices[t]];
                if (j) {
                    corr[j - 1] = (2.0 * weights[t]) * drow[assign[indices[t]]];
                    cset[j - 1] = 1;
                }
            }
            i64 bb = best_b[r];
            double bv = best_val[r];
            int updated = 0;
            for (i64 j = 0; j < m; j++) {
                const i64 d = touched[j];
                const i64 pd = assign[d];
                double v = ((rrow[pd] + cost[d * p + pr]) - crr)
                           - cost[d * p + pd];
                if (cset[j])
                    v += corr[j];
                if (v < bv || (v == bv && d < bb)) {
                    bv = v;
                    bb = d;
                    updated = 1;
                }
            }
            if (updated) {
                best_b[r] = bb;
                best_val[r] = bv;
            }
            for (i64 t = indptr[r]; t < indptr[r + 1]; t++) {
                const i64 j = pos[indices[t]];
                if (j)
                    cset[j - 1] = 0;
            }
            stats[3]++;
        }
        for (i64 j = 0; j < m; j++)
            pos[touched[j]] = 0;
    }

    free(buf);
    free(touched);
    free(pos);
    free(corr);
    free(cset);
    return swapped;
}
