"""TopoLB — the paper's mapping heuristic (Algorithm 1, Section 4).

Every cycle TopoLB picks the unplaced task whose placement is *most
critical*: the one with the largest gap between its expected cost on an
arbitrary free processor (``FAvg``) and its cost on its best free processor
(``FMin``), then places it on that best processor. Costs come from the
estimation function of Section 4.3 (see :mod:`repro.mapping.estimation`).

Implementation follows Section 4.4: a ``p x p`` table of ``fest(t, q)``
values is maintained incrementally —

* placing ``t_k`` on ``p_k`` only perturbs the rows of ``t_k``'s unplaced
  neighbors (their edge to ``t_k`` switches from the "expected distance" term
  to the exact ``c * d(q, p_k)`` term), costing ``O(p * deg(t_k))`` per cycle
  and ``O(p |Et|)`` overall for the first/second-order estimators;
* the third-order estimator additionally refreshes every row because the
  free-processor average distance changes when ``p_k`` is consumed —
  ``O(p^2)`` per cycle, ``O(p^3)`` overall (why the paper ships 2nd order).

Selection state (``FMin``, ``FAvg`` per row) is maintained across cycles;
when the consumed processor was some row's argmin, only those rows are
re-reduced (lazy repair) instead of rescanning the whole table.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping
from repro.mapping.estimation import EstimatorOrder, average_distance_vector
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

__all__ = ["TopoLB"]


#: Valid task-selection rules (see TopoLB docstring).
_SELECTION_RULES = ("gain", "max_cost", "volume")


class TopoLB(Mapper):
    """The paper's topology-aware mapper.

    Parameters
    ----------
    order:
        Which estimation function to use (default: second order, the paper's
        shipped configuration).
    dtype:
        Floating dtype of the ``fest`` table; ``numpy.float32`` halves memory
        for large machines at a tiny quality risk.
    selection:
        Which unplaced task each cycle picks — an ablation hook around the
        paper's core design decision:

        * ``"gain"`` (the paper): maximum criticality ``FAvg - FMin`` — the
          task that loses the most if deferred to an arbitrary processor;
        * ``"max_cost"``: maximum ``FMin`` — the task whose *best* placement
          is already costliest ("hardest first");
        * ``"volume"``: maximum total communication volume ("chattiest
          first", selection decoupled from the topology).
    """

    strategy_name = "TopoLB"

    def __init__(
        self,
        order: EstimatorOrder | int = EstimatorOrder.SECOND,
        dtype: type = np.float64,
        selection: str = "gain",
    ):
        self._order = EstimatorOrder(order)
        self._dtype = np.dtype(dtype)
        if self._dtype.kind != "f":
            raise MappingError(f"fest table dtype must be floating, got {dtype!r}")
        if selection not in _SELECTION_RULES:
            raise MappingError(
                f"selection must be one of {_SELECTION_RULES}, got {selection!r}"
            )
        self._selection = selection

    @property
    def order(self) -> EstimatorOrder:
        """The configured estimator order."""
        return self._order

    @property
    def selection(self) -> str:
        """The configured task-selection rule."""
        return self._selection

    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        n = self._check_sizes(graph, topology)
        prof = obs.active()
        if prof is None:
            assignment = self._run(graph, topology, n)
        else:
            with prof.timer("topolb.map"):
                assignment = self._run(graph, topology, n, prof)
        return Mapping(graph, topology, assignment)

    # ------------------------------------------------------------------ core
    #: Cached candidate minima per row. When a row's best free processor is
    #: consumed, the next cached candidate takes over in O(1); a full O(p)
    #: row rescan happens only when the whole reserve has been consumed —
    #: this is what keeps the symmetric-instance worst case (hundreds of rows
    #: sharing one argmin) from degrading every cycle to O(n p).
    _RESERVE = 8

    def _run(
        self,
        graph: TaskGraph,
        topology: Topology,
        n: int,
        prof: obs.Profiler | None = None,
    ) -> np.ndarray:
        dist = topology.distance_matrix().astype(self._dtype, copy=False)
        indptr, indices, weights = graph.csr_arrays()

        order = self._order
        # Bytes from each task to its not-yet-placed neighbors.
        unplaced_comm = graph.comm_volumes().astype(self._dtype)

        avg_all = average_distance_vector(topology).astype(self._dtype)
        avg_free = avg_all.copy()  # only consulted by the third-order path

        # fest table: rows = tasks, columns = processors.
        if order is EstimatorOrder.FIRST:
            fest = np.zeros((n, n), dtype=self._dtype)
        else:
            fest = np.outer(unplaced_comm, avg_free).astype(self._dtype)

        avail = np.ones(n, dtype=bool)
        unassigned = np.ones(n, dtype=bool)
        avail_count = n
        assignment = np.full(n, -1, dtype=np.int64)
        # Additive penalty pushing consumed processors out of row minima
        # (dtype-aware so float32 tables don't overflow).
        huge = np.finfo(self._dtype).max / 16
        penalty = np.zeros(n, dtype=self._dtype)

        f_sum = fest.sum(axis=1)
        f_min = np.empty(n, dtype=self._dtype)
        f_argmin = np.empty(n, dtype=np.int64)

        reserve = min(self._RESERVE, n)
        res_vals = np.empty((n, reserve), dtype=self._dtype)
        res_ids = np.empty((n, reserve), dtype=np.int64)
        res_pos = np.zeros(n, dtype=np.int64)

        def rebuild(rows: np.ndarray) -> None:
            """Recompute the cached smallest-`reserve` free processors per row.

            A *stable* full sort breaks value ties by the lowest processor id
            — the same deterministic choice a plain ``argmin`` scan makes —
            which matters on symmetric instances where huge tie classes arise
            and the tie-break decides the growth pattern.
            """
            block = fest[rows] + penalty
            ids = np.argsort(block, axis=1, kind="stable")[:, :reserve]
            res_ids[rows] = ids
            res_vals[rows] = np.take_along_axis(block, ids, axis=1)
            res_pos[rows] = 0
            f_min[rows] = res_vals[rows, 0]
            f_argmin[rows] = res_ids[rows, 0]

        rebuild(np.arange(n))

        static_volumes = graph.comm_volumes()
        neg_inf = -np.inf
        # Lazy-repair telemetry (flushed to ``prof`` once, after the loop).
        cycles = reserve_hits = reserve_exhaustions = 0
        rows_rebuilt = neighbor_updates = 0
        for _cycle in range(n):
            # --- select the next task (default: max criticality gain) ------
            if self._selection == "gain":
                score = f_sum / avail_count - f_min
            elif self._selection == "max_cost":
                score = f_min
            else:  # "volume"
                score = static_volumes
            tk = int(np.argmax(np.where(unassigned, score, neg_inf)))
            pk = int(f_argmin[tk])
            assignment[tk] = pk
            unassigned[tk] = False
            avail[pk] = False
            avail_count -= 1
            if prof is not None:
                cycles += 1
            if avail_count == 0:
                break
            penalty[pk] = huge

            # --- processor pk leaves the free set --------------------------
            f_sum -= fest[:, pk]
            rescan: list[int] = []
            stale_rows = np.flatnonzero(unassigned & (f_argmin == pk))
            for t in stale_rows:
                t = int(t)
                pos = int(res_pos[t]) + 1
                while pos < reserve and not avail[res_ids[t, pos]]:
                    pos += 1
                if pos < reserve:
                    res_pos[t] = pos
                    f_min[t] = res_vals[t, pos]
                    f_argmin[t] = res_ids[t, pos]
                else:
                    rescan.append(t)
            if prof is not None:
                reserve_exhaustions += len(rescan)
                reserve_hits += len(stale_rows) - len(rescan)

            # --- neighbor rows: the (j, tk) edge cost becomes exact --------
            lo, hi = indptr[tk], indptr[tk + 1]
            dist_pk = dist[pk]
            touched: list[int] = []
            for j, c in zip(indices[lo:hi], weights[lo:hi]):
                j = int(j)
                if not unassigned[j]:
                    continue
                if order is EstimatorOrder.FIRST:
                    fest[j] += c * dist_pk
                elif order is EstimatorOrder.SECOND:
                    fest[j] += c * (dist_pk - avg_all)
                else:
                    fest[j] += c * (dist_pk - avg_free)
                unplaced_comm[j] -= c
                touched.append(j)
            if prof is not None:
                neighbor_updates += len(touched)

            if order is EstimatorOrder.THIRD:
                # Free-processor average shrinks by pk's contribution; every
                # row's expected-distance term shifts accordingly (O(p^2)).
                new_avg = (avg_free * (avail_count + 1) - dist_pk) / avail_count
                delta = new_avg - avg_free
                avg_free = new_avg
                rows = np.flatnonzero(unassigned)
                fest[rows] += np.outer(unplaced_comm[rows], delta)
                touched = [int(r) for r in rows]

            # --- repair row reductions --------------------------------------
            dirty = np.unique(np.asarray(rescan + touched, dtype=np.int64))
            if len(dirty):
                rebuild(dirty)
                f_sum[dirty] = fest[dirty] @ avail.astype(self._dtype)
            if prof is not None:
                rows_rebuilt += len(dirty)

        if prof is not None:
            prof.count("topolb.cycles", cycles)
            prof.count("topolb.reserve_hits", reserve_hits)
            prof.count("topolb.reserve_exhaustions", reserve_exhaustions)
            prof.count("topolb.rows_rebuilt", rows_rebuilt)
            prof.count("topolb.neighbor_updates", neighbor_updates)
        return assignment
