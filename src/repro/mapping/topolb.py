"""TopoLB — the paper's mapping heuristic (Algorithm 1, Section 4).

Every cycle TopoLB picks the unplaced task whose placement is *most
critical*: the one with the largest gap between its expected cost on an
arbitrary free processor (``FAvg``) and its cost on its best free processor
(``FMin``), then places it on that best processor. Costs come from the
estimation function of Section 4.3 (see :mod:`repro.mapping.estimation`).

Implementation follows Section 4.4: a ``p x p`` table of ``fest(t, q)``
values is maintained incrementally —

* placing ``t_k`` on ``p_k`` only perturbs the rows of ``t_k``'s unplaced
  neighbors (their edge to ``t_k`` switches from the "expected distance" term
  to the exact ``c * d(q, p_k)`` term), costing ``O(p * deg(t_k))`` per cycle
  and ``O(p |Et|)`` overall for the first/second-order estimators;
* the third-order estimator additionally refreshes every row because the
  free-processor average distance changes when ``p_k`` is consumed —
  ``O(p^2)`` per cycle, ``O(p^3)`` overall (why the paper ships 2nd order).

Selection state (``FMin``, ``FAvg`` per row) is maintained across cycles;
when the consumed processor was some row's argmin, only those rows are
re-reduced (lazy repair) instead of rescanning the whole table.

Two kernels implement the cycle body (see :mod:`repro.mapping.kernels`):
``"vectorized"`` (default) batches the neighbor-row updates and the
stale-argmin repair across whole index arrays per NumPy call;
``"reference"`` keeps the original scalar loops. Both produce bit-identical
assignments — the equivalence suite enforces it — so the reference path
doubles as the executable specification of the fast one.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping, resolve_allowed
from repro.mapping.context import MappingContext, context_for
from repro.mapping.estimation import EstimatorOrder
from repro.mapping.kernels import resolve_kernel
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

__all__ = ["TopoLB"]


#: Valid task-selection rules (see TopoLB docstring).
_SELECTION_RULES = ("gain", "max_cost", "volume")


class TopoLB(Mapper):
    """The paper's topology-aware mapper.

    Parameters
    ----------
    order:
        Which estimation function to use (default: second order, the paper's
        shipped configuration).
    dtype:
        Floating dtype of the ``fest`` table; ``numpy.float32`` halves memory
        for large machines at a tiny quality risk.
    selection:
        Which unplaced task each cycle picks — an ablation hook around the
        paper's core design decision:

        * ``"gain"`` (the paper): maximum criticality ``FAvg - FMin`` — the
          task that loses the most if deferred to an arbitrary processor;
        * ``"max_cost"``: maximum ``FMin`` — the task whose *best* placement
          is already costliest ("hardest first");
        * ``"volume"``: maximum total communication volume ("chattiest
          first", selection decoupled from the topology).
    kernel:
        ``"vectorized"`` (batched NumPy cycle body, the default),
        ``"reference"`` (the original scalar loops), or ``None`` for the
        process-wide default (:func:`repro.mapping.kernels.get_default_kernel`).
    """

    strategy_name = "TopoLB"

    def __init__(
        self,
        order: EstimatorOrder | int = EstimatorOrder.SECOND,
        dtype: type = np.float64,
        selection: str = "gain",
        kernel: str | None = None,
    ):
        self._order = EstimatorOrder(order)
        self._dtype = np.dtype(dtype)
        if self._dtype.kind != "f":
            raise MappingError(f"fest table dtype must be floating, got {dtype!r}")
        if selection not in _SELECTION_RULES:
            raise MappingError(
                f"selection must be one of {_SELECTION_RULES}, got {selection!r}"
            )
        self._selection = selection
        self._kernel = resolve_kernel(kernel)

    @property
    def order(self) -> EstimatorOrder:
        """The configured estimator order."""
        return self._order

    @property
    def selection(self) -> str:
        """The configured task-selection rule."""
        return self._selection

    @property
    def kernel(self) -> str:
        """The resolved kernel name ("vectorized" or "reference")."""
        return self._kernel

    def map(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
        *,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Map ``graph`` onto ``topology``.

        ``allowed`` restricts placement to a boolean processor mask (degraded
        machines); ``None`` auto-derives the mask from a
        :class:`~repro.faults.DegradedTopology` and means "every processor"
        elsewhere. Masked runs place ``n <= p'`` tasks onto the ``p'``
        allowed processors and raise :class:`MappingError` when capacity is
        insufficient. ``ctx`` supplies shared per-(graph, topology) tables;
        ``None`` uses the process-wide shared context.
        """
        allowed = resolve_allowed(topology, allowed)
        n = self._check_sizes(graph, topology, allowed)
        if ctx is None:
            ctx = context_for(graph, topology)
        run = self._run_reference if self._kernel == "reference" else self._run_vectorized
        prof = obs.active()
        if prof is None:
            assignment = run(graph, topology, n, allowed=allowed, ctx=ctx)
        else:
            with prof.timer("topolb.map"):
                assignment = run(graph, topology, n, prof, allowed=allowed, ctx=ctx)
        return Mapping(graph, topology, assignment)

    # ------------------------------------------------------------------ core
    #: Cached candidate minima per row. When a row's best free processor is
    #: consumed, the next cached candidate takes over in O(1); a full O(p)
    #: row rescan happens only when the whole reserve has been consumed —
    #: this is what keeps the symmetric-instance worst case (hundreds of rows
    #: sharing one argmin) from degrading every cycle to O(n p).
    _RESERVE = 8

    def _setup(self, graph: TaskGraph, topology: Topology, n: int,
               allowed: np.ndarray | None = None,
               ctx: MappingContext | None = None):
        """Shared kernel state: fest table, selection vectors, reserve arrays."""
        if ctx is None:
            ctx = context_for(graph, topology)
        dist = ctx.distance_matrix(self._dtype)
        indptr, indices, weights = ctx.csr_arrays()

        order = self._order
        # Bytes from each task to its not-yet-placed neighbors.
        unplaced_comm = graph.comm_volumes().astype(self._dtype)

        # copy=False: the cast is a no-op for float64 tables, and avg_all is
        # never mutated, so aliasing the shared read-only vector is safe
        # (avg_free, which the third-order path does mutate, is a real copy).
        # Masked runs take the expectation over the *allowed* set — the
        # "arbitrary processor" a deferred task could land on is a healthy
        # one — which is a per-fault-pattern vector, computed fresh (cheap,
        # O(p * p'), and never shared-cached under the pristine key).
        if allowed is None:
            avg_all = ctx.average_distance_vector().astype(self._dtype, copy=False)
        else:
            avg_all = ctx.average_distance_vector(allowed).astype(
                self._dtype, copy=False
            )
        avg_free = avg_all.copy()  # only consulted by the third-order path

        # fest table: rows = tasks, columns = processors (p columns; equal to
        # n in the classic unmasked case).
        p = topology.num_nodes
        if order is EstimatorOrder.FIRST:
            fest = np.zeros((n, p), dtype=self._dtype)
        else:
            # outer() of two dtype arrays is already dtype: no astype copy.
            fest = np.outer(unplaced_comm, avg_free)
        return dist, indptr, indices, weights, unplaced_comm, avg_all, avg_free, fest

    def _run_reference(
        self,
        graph: TaskGraph,
        topology: Topology,
        n: int,
        prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> np.ndarray:
        """The original scalar cycle body — kept verbatim as the executable
        specification the vectorized kernel is tested against."""
        (dist, indptr, indices, weights, unplaced_comm,
         avg_all, avg_free, fest) = self._setup(graph, topology, n, allowed, ctx)
        order = self._order
        p = topology.num_nodes

        avail = np.ones(p, dtype=bool) if allowed is None else allowed.copy()
        unassigned = np.ones(n, dtype=bool)
        avail_count = int(avail.sum())
        assignment = np.full(n, -1, dtype=np.int64)
        # Additive penalty pushing consumed processors out of row minima
        # (dtype-aware so float32 tables don't overflow). Disallowed
        # processors start penalized, which keeps them out of every reserve
        # and argmin for the whole run — the reserve never needs more than
        # n <= p' candidates, so the genuine (allowed) entries always fill it
        # ahead of penalized ones.
        huge = np.finfo(self._dtype).max / 16
        penalty = np.zeros(p, dtype=self._dtype)
        if allowed is not None:
            penalty[~avail] = huge

        # Row sums over the *free* columns: all p columns in the classic
        # case, the allowed subset under a mask (disallowed columns are
        # never consumed, so the incremental "-= fest[:, pk]" bookkeeping
        # stays consistent only if they are excluded from the start).
        if allowed is None:
            f_sum = fest.sum(axis=1)
        else:
            f_sum = fest @ avail.astype(self._dtype)
        f_min = np.empty(n, dtype=self._dtype)
        f_argmin = np.empty(n, dtype=np.int64)

        reserve = min(self._RESERVE, n)
        res_vals = np.empty((n, reserve), dtype=self._dtype)
        res_ids = np.empty((n, reserve), dtype=np.int64)
        res_pos = np.zeros(n, dtype=np.int64)

        def rebuild(rows: np.ndarray) -> None:
            """Recompute the cached smallest-`reserve` free processors per row.

            A *stable* full sort breaks value ties by the lowest processor id
            — the same deterministic choice a plain ``argmin`` scan makes —
            which matters on symmetric instances where huge tie classes arise
            and the tie-break decides the growth pattern.
            """
            block = fest[rows] + penalty
            ids = np.argsort(block, axis=1, kind="stable")[:, :reserve]
            res_ids[rows] = ids
            res_vals[rows] = np.take_along_axis(block, ids, axis=1)
            res_pos[rows] = 0
            f_min[rows] = res_vals[rows, 0]
            f_argmin[rows] = res_ids[rows, 0]

        rebuild(np.arange(n))

        static_volumes = graph.comm_volumes()
        neg_inf = -np.inf
        # Lazy-repair telemetry (flushed to ``prof`` once, after the loop).
        cycles = reserve_hits = reserve_exhaustions = 0
        rows_rebuilt = neighbor_updates = 0
        for _cycle in range(n):
            # --- select the next task (default: max criticality gain) ------
            if self._selection == "gain":
                score = f_sum / avail_count - f_min
            elif self._selection == "max_cost":
                score = f_min
            else:  # "volume"
                score = static_volumes
            tk = int(np.argmax(np.where(unassigned, score, neg_inf)))
            pk = int(f_argmin[tk])
            assignment[tk] = pk
            unassigned[tk] = False
            avail[pk] = False
            avail_count -= 1
            if prof is not None:
                cycles += 1
            if avail_count == 0:
                break
            penalty[pk] = huge

            # --- processor pk leaves the free set --------------------------
            f_sum -= fest[:, pk]
            rescan: list[int] = []
            stale_rows = np.flatnonzero(unassigned & (f_argmin == pk))
            for t in stale_rows:
                t = int(t)
                pos = int(res_pos[t]) + 1
                while pos < reserve and not avail[res_ids[t, pos]]:
                    pos += 1
                if pos < reserve:
                    res_pos[t] = pos
                    f_min[t] = res_vals[t, pos]
                    f_argmin[t] = res_ids[t, pos]
                else:
                    rescan.append(t)
            if prof is not None:
                reserve_exhaustions += len(rescan)
                reserve_hits += len(stale_rows) - len(rescan)

            # --- neighbor rows: the (j, tk) edge cost becomes exact --------
            lo, hi = indptr[tk], indptr[tk + 1]
            dist_pk = dist[pk]
            touched: list[int] = []
            for j, c in zip(indices[lo:hi], weights[lo:hi]):
                j = int(j)
                if not unassigned[j]:
                    continue
                if order is EstimatorOrder.FIRST:
                    fest[j] += c * dist_pk
                elif order is EstimatorOrder.SECOND:
                    fest[j] += c * (dist_pk - avg_all)
                else:
                    fest[j] += c * (dist_pk - avg_free)
                unplaced_comm[j] -= c
                touched.append(j)
            if prof is not None:
                neighbor_updates += len(touched)

            if order is EstimatorOrder.THIRD:
                # Free-processor average shrinks by pk's contribution; every
                # row's expected-distance term shifts accordingly (O(p^2)).
                new_avg = (avg_free * (avail_count + 1) - dist_pk) / avail_count
                delta = new_avg - avg_free
                avg_free = new_avg
                rows = np.flatnonzero(unassigned)
                fest[rows] += np.outer(unplaced_comm[rows], delta)
                touched = [int(r) for r in rows]

            # --- repair row reductions --------------------------------------
            dirty = np.unique(np.asarray(rescan + touched, dtype=np.int64))
            if len(dirty):
                rebuild(dirty)
                f_sum[dirty] = fest[dirty] @ avail.astype(self._dtype)
            if prof is not None:
                rows_rebuilt += len(dirty)

        if prof is not None:
            prof.count("topolb.cycles", cycles)
            prof.count("topolb.reserve_hits", reserve_hits)
            prof.count("topolb.reserve_exhaustions", reserve_exhaustions)
            prof.count("topolb.rows_rebuilt", rows_rebuilt)
            prof.count("topolb.neighbor_updates", neighbor_updates)
        return assignment

    def _run_vectorized(
        self,
        graph: TaskGraph,
        topology: Topology,
        n: int,
        prof: obs.Profiler | None = None,
        allowed: np.ndarray | None = None,
        ctx: MappingContext | None = None,
    ) -> np.ndarray:
        """Batched cycle body — bit-identical assignments to the reference.

        Two structural changes over the reference, neither observable in the
        output:

        * **Lazy reserve.** The reference stable-sorts every dirty row each
          cycle to refresh its cached candidate list, but a touched row only
          ever *reads* that list on a later stale-argmin event — most sorts
          are thrown away unread. Here a dirty row merely records its
          rebuild epoch; ``f_min``/``f_argmin`` come from an O(free) argmin
          (the head of the sorted list, without the sort). A stale event
          then *replays* the walk the reference would have made: processors
          are consumed one per cycle and never returned, so the consumption
          log recovers any epoch's free set, and the walk's outcome is
          decided by ranking the row's current free argmin against the
          since-consumed candidates (see the inline proof). No candidate
          list is ever materialized; per-row sorts disappear entirely.
        * **Poisoned selection.** Assigned rows get sentinel scores
          (``-inf``/``+inf``) instead of being masked out with ``np.where``
          every cycle, and ``f_argmin`` is poisoned to ``-1`` so the stale
          scan needs no ``unassigned &`` mask. Sentinels strictly lose every
          argmax, so selection among unassigned rows is untouched.

        All floating-point expressions keep the reference kernel's
        elementwise evaluation order so tie-breaks cannot diverge.
        """
        if ctx is None:
            ctx = context_for(graph, topology)
        (dist, indptr, indices, weights, unplaced_comm,
         avg_all, avg_free, fest) = self._setup(graph, topology, n, allowed, ctx)
        order = self._order
        selection = self._selection
        p = topology.num_nodes

        avail = np.ones(p, dtype=bool) if allowed is None else allowed.copy()
        unassigned = np.ones(n, dtype=bool)
        avail_count = int(avail.sum())
        assignment = np.full(n, -1, dtype=np.int64)
        # Float view of the availability mask, maintained in O(1) per cycle
        # (the reference path re-casts the bool mask every cycle instead).
        avail_f = avail.astype(self._dtype)

        # f_sum feeds only the "gain" score; other selections never read it.
        # Masked runs sum over the allowed columns only — the same free-set
        # sums the reference kernel maintains.
        track_sum = selection == "gain"
        if not track_sum:
            f_sum = None
        elif allowed is None:
            f_sum = fest.sum(axis=1)
        else:
            f_sum = fest @ avail_f
        # Sentinel written into f_min on assignment: +inf sends the gain
        # score to -inf, -inf loses the max_cost argmax directly.
        f_min_poison = -np.inf if selection == "max_cost" else np.inf
        if selection == "volume":
            vol_score = graph.comm_volumes().astype(np.float64)

        reserve = min(self._RESERVE, n)
        ar = np.arange(n)            # shared index scratch

        # Initial reserve via `reserve` argmin-extraction passes: pass k
        # yields every row's k-th smallest (value, id) entry — the head of
        # the reference's stable initial sort, in O(reserve * n^2) instead
        # of O(n^2 log n). Extracted entries are poisoned in fest itself
        # (saving an n^2 working copy) and restored from res_vals after;
        # within a row the extracted columns are distinct, so the
        # scatter-back is an exact inverse.
        res_ids = np.empty((n, reserve), dtype=np.int64)
        res_vals = np.empty((n, reserve), dtype=self._dtype)
        if allowed is None:
            for k in range(reserve):
                am = fest.argmin(axis=1)
                res_ids[:, k] = am
                res_vals[:, k] = fest[ar, am]
                fest[ar, am] = np.inf
            fest[ar[:, None], res_ids] = res_vals
        else:
            # Masked: extract from a copied allowed-column sub-matrix so the
            # disallowed columns (which the reference keeps out via its huge
            # penalty) can never win an argmin. allowed_ids is ascending, so
            # the sub-matrix argmin tie-breaks toward the lowest allowed id —
            # the same (value, id) order the reference's stable sort uses.
            allowed_ids0 = np.flatnonzero(avail)
            work = fest[:, allowed_ids0]  # fancy index: already a copy
            for k in range(reserve):
                am = work.argmin(axis=1)
                res_ids[:, k] = allowed_ids0[am]
                res_vals[:, k] = work[ar, am]
                work[ar, am] = np.inf
        res_pos = np.zeros(n, dtype=np.int64)
        f_min = res_vals[:, 0].copy()
        f_argmin = res_ids[:, 0].copy()

        # Lazy-reserve bookkeeping: the cycle at which the reference would
        # last have rebuilt each row (-1 = the initial build, for which
        # res_* above holds the actual candidate list) and the processors in
        # consumption order — together they recover, for any row, the free
        # set the reference's reserve was sorted over.
        touch_epoch = np.full(n, -1, dtype=np.int64)
        consumed_order = np.empty(n, dtype=np.int64)

        cols = np.arange(reserve)
        dirty_mask = np.zeros(n, dtype=bool)
        # np.flatnonzero(avail), kept incrementally: consumed ids are shifted
        # out of an ascending buffer in place (ascending order is load-bearing
        # — it is what makes "first minimum position" mean "lowest id").
        free_buf = np.flatnonzero(avail)
        nfree = avail_count
        free_ids = free_buf[:nfree]
        # Second-order rows subtract the same static baseline every cycle;
        # the whole (p, p) difference table is hoisted not just out of the
        # loop but into the shared topology cache. (Third order recentres
        # on avg_free, which moves every cycle.) The masked baseline is the
        # allowed-set average, a per-fault-pattern table built inline — the
        # same elementwise dist[pk] - avg_all rows the reference computes.
        if order is EstimatorOrder.SECOND:
            if allowed is None:
                dma = ctx.centered_distance_matrix(self._dtype)
            else:
                dma = dist - avg_all
        # unplaced_comm only feeds the third-order recentring term — for the
        # other orders it is never read, so skip maintaining it.
        track_comm = order is EstimatorOrder.THIRD
        # Score buffer in the fest dtype — the reference's `f_sum / count`
        # divides in that dtype, and matching its rounding is what keeps
        # near-tie argmax decisions identical.
        sbuf = np.empty(n, dtype=self._dtype)

        cycles = reserve_hits = reserve_exhaustions = 0
        rows_rebuilt = neighbor_updates = 0
        for cycle in range(n):
            if selection == "gain":
                np.divide(f_sum, avail_count, out=sbuf)
                sbuf -= f_min
                tk = int(sbuf.argmax())
            elif selection == "max_cost":
                tk = int(f_min.argmax())
            else:  # "volume"
                tk = int(vol_score.argmax())
            pk = int(f_argmin[tk])
            assignment[tk] = pk
            unassigned[tk] = False
            avail[pk] = False
            avail_f[pk] = 0
            avail_count -= 1
            f_argmin[tk] = -1
            f_min[tk] = f_min_poison
            if selection == "volume":
                vol_score[tk] = -np.inf
            if prof is not None:
                cycles += 1
            if avail_count == 0:
                break

            # --- processor pk leaves the free set --------------------------
            if track_sum:
                f_sum -= fest[:, pk]
            consumed_order[cycle] = pk
            pos_pk = int(np.searchsorted(free_buf[:nfree], pk))
            free_buf[pos_pk:nfree - 1] = free_buf[pos_pk + 1:nfree]
            nfree -= 1
            free_ids = free_buf[:nfree]
            rescan: list[int] = []
            stale = np.flatnonzero(f_argmin == pk)
            if stale.size:
                epochs = touch_epoch[stale]
                vmask = epochs == -1
                sv = stale[vmask]
                if sv.size:
                    # Rows never dirtied still hold their initial candidate
                    # list: first still-free cached candidate after the
                    # current position, all rows at once (argmax = first
                    # True). This is the common case in the early cycles of
                    # symmetric instances, where hundreds of rows share the
                    # consumed argmin.
                    ok = avail[res_ids[sv]]
                    ok &= cols > res_pos[sv, None]
                    first = ok.argmax(axis=1)
                    found = ok[ar[: sv.size], first]
                    hit = sv[found]
                    if hit.size:
                        pos = first[found]
                        res_pos[hit] = pos
                        f_min[hit] = res_vals[hit, pos]
                        f_argmin[hit] = res_ids[hit, pos]
                    rescan.extend(int(t) for t in sv[~found])
                for t in stale[~vmask]:
                    # Dirtied rows replay the walk the reference would have
                    # made over the reserve it rebuilt at the row's epoch —
                    # without materializing it. Whatever free candidate that
                    # walk reaches is *preceded* in the epoch's (value, id)
                    # order only by consumed entries (a free predecessor
                    # would itself be a smaller free value), so the find is
                    # exactly the row's current free argmin, sitting at
                    # epoch-rank r = the number of since-consumed candidates
                    # ordered ahead of it. The walk succeeds iff r fits
                    # inside the reserve window; otherwise the reference
                    # would have exhausted the reserve and rescanned.
                    t = int(t)
                    rowt = fest[t]
                    fv = rowt[free_ids]
                    j = int(fv.argmin())
                    vmin = fv[j]
                    cseq = consumed_order[touch_epoch[t] + 1: cycle + 1]
                    cv = rowt[cseq]
                    r = int(np.count_nonzero(cv < vmin))
                    if r < reserve:
                        # Ties with vmin can only push the rank further out;
                        # resolve them by id only when one actually exists.
                        eq = cv == vmin
                        if eq.any():
                            r += int(np.count_nonzero(cseq[eq] < free_ids[j]))
                    if r < reserve:
                        f_min[t] = vmin
                        f_argmin[t] = free_ids[j]
                    else:
                        rescan.append(t)
                if prof is not None:
                    reserve_exhaustions += len(rescan)
                    reserve_hits += int(stale.size) - len(rescan)

            # --- neighbor rows: one broadcasted update for all of them -----
            # The rows written here are exactly the rows repaired below, so
            # the fancy-indexed `fest[touched] += ...` (gather, add, scatter)
            # is opened up: gather once into rows_full, update in place,
            # scatter back, and hand the already-gathered rows to the repair
            # step. Same elementwise operations, one O(k*p) gather fewer.
            lo, hi = indptr[tk], indptr[tk + 1]
            nbrs = indices[lo:hi]
            sel = unassigned[nbrs]
            touched = nbrs[sel]
            rows_full = None
            if touched.size:
                ws = weights[lo:hi][sel]
                if order is EstimatorOrder.FIRST:
                    upd = ws[:, None] * dist[pk]
                elif order is EstimatorOrder.SECOND:
                    upd = ws[:, None] * dma[pk]
                else:
                    upd = ws[:, None] * (dist[pk] - avg_free)
                rows_full = fest[touched]
                rows_full += upd
                fest[touched] = rows_full
                if track_comm:
                    unplaced_comm[touched] -= ws
            if prof is not None:
                neighbor_updates += int(touched.size)

            if order is EstimatorOrder.THIRD:
                new_avg = (avg_free * (avail_count + 1) - dist[pk]) / avail_count
                delta = new_avg - avg_free
                avg_free = new_avg
                rows = np.flatnonzero(unassigned)
                fest[rows] += np.outer(unplaced_comm[rows], delta)
                touched = rows
                rows_full = None  # recentring rewrote more rows than touched

            # --- repair row reductions (mask union instead of np.unique) ---
            if rescan or touched.size:
                if not rescan:
                    # Common case: CSR neighbor ids are already unique (and
                    # rows ⊇ rescan for third order), no union to take.
                    dirty = touched
                else:
                    dirty_mask[rescan] = True
                    dirty_mask[touched] = True
                    dirty = np.flatnonzero(dirty_mask)
                    dirty_mask[dirty] = False
                    rows_full = None
                touch_epoch[dirty] = cycle
                k = dirty.size
                if rows_full is None:
                    rows_full = fest[dirty]
                # Head of the reference's sorted reserve, without the sort:
                # lowest-id minimum over the free columns.
                sub = rows_full[:, free_ids]
                posm = sub.argmin(axis=1)
                f_min[dirty] = sub[ar[:k], posm]
                f_argmin[dirty] = free_ids[posm]
                if track_sum:
                    f_sum[dirty] = rows_full @ avail_f
                if prof is not None:
                    rows_rebuilt += int(k)

        if prof is not None:
            prof.count("topolb.cycles", cycles)
            prof.count("topolb.reserve_hits", reserve_hits)
            prof.count("topolb.reserve_exhaustions", reserve_exhaustions)
            prof.count("topolb.rows_rebuilt", rows_rebuilt)
            prof.count("topolb.neighbor_updates", neighbor_updates)
        return assignment
