"""ASCII visualization of mappings and link loads on 2D grid machines.

Debugging a mapper usually starts with "where did my tasks actually land?";
these renderers answer that in a terminal. Only 2D meshes/tori are drawable;
other topologies raise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapping
from repro.mapping.metrics import per_link_loads
from repro.topology.grid import GridTopology

__all__ = ["render_placement", "render_link_heat"]


def _check_2d_grid(topology) -> GridTopology:
    if not isinstance(topology, GridTopology) or topology.ndim != 2:
        raise MappingError(
            f"can only draw 2D mesh/torus machines, got {topology.name}"
        )
    return topology


def render_placement(mapping: Mapping) -> str:
    """Grid of the machine with the task id hosted by each processor.

    Multi-task processors show ``+n`` for the extra residents. Example::

        >>> print(render_placement(IdentityMapper().map(g, Torus((2, 2)))))
          0   1
          2   3
    """
    topo = _check_2d_grid(mapping.topology)
    rows, cols = topo.shape
    cells = [["." for _ in range(cols)] for _ in range(rows)]
    residents: dict[int, list[int]] = {}
    for task, proc in enumerate(mapping.assignment):
        residents.setdefault(int(proc), []).append(task)
    for proc, tasks in residents.items():
        r, c = topo.coords(proc)
        label = str(tasks[0])
        if len(tasks) > 1:
            label += f"+{len(tasks) - 1}"
        cells[r][c] = label
    width = max(len(cell) for row in cells for cell in row)
    return "\n".join(
        " ".join(cell.rjust(width) for cell in row) for row in cells
    )


def render_link_heat(mapping: Mapping, levels: str = " .:-=+*#%@") -> str:
    """Heat map of per-link byte loads, interleaving nodes and links.

    Nodes render as ``o``; the character between two nodes scales with the
    bidirectional traffic on that link (last character of ``levels`` =
    hottest link). Wrap-around links of tori are not drawn (they fall
    outside the planar layout) but still carry load in the metrics.
    """
    topo = _check_2d_grid(mapping.topology)
    loads = per_link_loads(mapping.graph, topo, mapping.assignment)
    both: dict[tuple[int, int], float] = {}
    for (a, b), vol in loads.items():
        key = (min(a, b), max(a, b))
        both[key] = both.get(key, 0.0) + vol
    peak = max(both.values(), default=0.0)

    def heat(a: int, b: int) -> str:
        vol = both.get((min(a, b), max(a, b)), 0.0)
        if peak <= 0:
            return levels[0]
        idx = int(round(vol / peak * (len(levels) - 1)))
        return levels[idx]

    rows, cols = topo.shape
    lines: list[str] = []
    for r in range(rows):
        line = []
        for c in range(cols):
            line.append("o")
            if c + 1 < cols:
                line.append(heat(topo.index((r, c)), topo.index((r, c + 1))))
        lines.append("".join(line))
        if r + 1 < rows:
            vert = []
            for c in range(cols):
                vert.append(heat(topo.index((r, c)), topo.index((r + 1, c))))
                if c + 1 < cols:
                    vert.append(" ")
            lines.append("".join(vert))
    return "\n".join(lines)
