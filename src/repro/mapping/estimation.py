"""Estimation-function machinery for TopoLB (Section 4.3 of the paper).

TopoLB scores every (unplaced task ``t``, free processor ``q``) pair with an
estimation function ``fest(t, q, P)`` approximating the contribution of ``t``
to total hop-bytes if placed on ``q``:

* **first order** — count only edges to already-placed neighbors ``j``:
  ``sum c_tj * d(q, P(j))``  (this is what TopoCentLB uses);
* **second order** — additionally charge edges to *unplaced* neighbors at the
  expected distance from ``q`` to a uniformly random processor in ``Vp``:
  ``... + (unplaced bytes of t) * mean_over_all_procs d(q, .)``;
* **third order** — same, but the expectation runs over the *still free*
  processors ``Pk`` only, so it must be refreshed every cycle (the paper's
  ``O(p^3)`` variant).

The module provides the shared vector helpers; the update loop itself lives
in :mod:`repro.mapping.topolb`.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.topology.base import Topology

__all__ = ["EstimatorOrder", "average_distance_vector"]


class EstimatorOrder(enum.IntEnum):
    """Which approximation of Section 4.3 the estimation function uses."""

    FIRST = 1
    SECOND = 2
    THIRD = 3


def average_distance_vector(
    topology: Topology, subset: np.ndarray | None = None
) -> np.ndarray:
    """``avg[q] = mean over processors j (in subset) of d(q, j)``.

    With ``subset=None`` the mean runs over all processors — the second-order
    expectation ``E_{j ~ U[Vp]} d(q, j)``. Passing a boolean mask restricts
    the mean to free processors — the third-order ``E_{j ~ U[Pk]} d(q, j)``.
    """
    p = topology.num_nodes
    mat = topology.distance_matrix().astype(np.float64, copy=False)
    if subset is None:
        return mat.mean(axis=1)
    mask = np.asarray(subset, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        return np.zeros(p, dtype=np.float64)
    return mat[:, mask].sum(axis=1) / count
