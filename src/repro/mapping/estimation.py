"""Estimation-function machinery for TopoLB (Section 4.3 of the paper).

TopoLB scores every (unplaced task ``t``, free processor ``q``) pair with an
estimation function ``fest(t, q, P)`` approximating the contribution of ``t``
to total hop-bytes if placed on ``q``:

* **first order** — count only edges to already-placed neighbors ``j``:
  ``sum c_tj * d(q, P(j))``  (this is what TopoCentLB uses);
* **second order** — additionally charge edges to *unplaced* neighbors at the
  expected distance from ``q`` to a uniformly random processor in ``Vp``:
  ``... + (unplaced bytes of t) * mean_over_all_procs d(q, .)``;
* **third order** — same, but the expectation runs over the *still free*
  processors ``Pk`` only, so it must be refreshed every cycle (the paper's
  ``O(p^3)`` variant).

The module provides the shared vector helpers; the update loop itself lives
in :mod:`repro.mapping.topolb`.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.topology import cache
from repro.topology.base import Topology

__all__ = ["EstimatorOrder", "average_distance_vector", "centered_distance_matrix"]


class EstimatorOrder(enum.IntEnum):
    """Which approximation of Section 4.3 the estimation function uses."""

    FIRST = 1
    SECOND = 2
    THIRD = 3


def average_distance_vector(
    topology: Topology, subset: np.ndarray | None = None
) -> np.ndarray:
    """``avg[q] = mean over processors j (in subset) of d(q, j)``.

    With ``subset=None`` the mean runs over all processors — the second-order
    expectation ``E_{j ~ U[Vp]} d(q, j)``. Passing a boolean mask restricts
    the mean to free processors — the third-order ``E_{j ~ U[Pk]} d(q, j)``.
    """
    p = topology.num_nodes
    if subset is not None:
        mat = topology.distance_matrix(np.float64)
        mask = np.asarray(subset, dtype=bool)
        count = int(mask.sum())
        if count == 0:
            return np.zeros(p, dtype=np.float64)
        return mat[:, mask].sum(axis=1) / count

    # The all-processors mean is a pure function of the topology shape, so it
    # is cached on the instance (and shared across instances of shape-defined
    # topologies) as a read-only vector — every TopoLB.map used to pay the
    # full O(p^2) mean here.
    vec = topology._avg_distance_vector
    if vec is not None:
        return vec
    key = topology.cache_key()
    skey = (key, "average_distance_vector") if key is not None else None
    vec = cache.shared_get(skey) if skey is not None else None
    if vec is None:
        # Request float64 directly: hop distances are exact small integers in
        # any float dtype, and the mappers want the float64 matrix anyway, so
        # this shares one cached table instead of also building an int one.
        vec = topology.distance_matrix(np.float64).mean(axis=1)
        vec.flags.writeable = False
        if skey is not None:
            cache.shared_put(skey, vec)
    topology._avg_distance_vector = vec
    return vec


def centered_distance_matrix(
    topology: Topology, dtype: np.dtype | type = np.float64
) -> np.ndarray:
    """``centered[q, j] = d(q, j) - avg[j]`` in ``dtype``, cached per dtype.

    The second-order estimator subtracts the same expected-distance baseline
    from a distance row on every placement cycle; this is that subtraction
    hoisted all the way out of the mapper into the shared topology tables
    (it is as much a pure function of the machine shape as the distance
    matrix itself). Read-only, like every shared table.
    """
    dt = np.dtype(dtype)
    mat = topology._centered_distance.get(dt)
    if mat is not None:
        return mat
    key = topology.cache_key()
    skey = (key, "centered_distance_matrix", dt.str) if key is not None else None
    mat = cache.shared_get(skey) if skey is not None else None
    if mat is None:
        # Same cast-then-subtract the mappers used to do inline, so the
        # cached table is bitwise what the kernels computed before.
        dist = topology.distance_matrix(dt)
        avg = average_distance_vector(topology).astype(dt, copy=False)
        mat = dist - avg
        mat.flags.writeable = False
        if skey is not None:
            cache.shared_put(skey, mat)
    topology._centered_distance[dt] = mat
    return mat
