"""Recursive bipartition embedding — the ARM-style mapper.

Ercal, Ramanujam & Sadayappan's "Allocation by Recursive Mincut" (cited by
the paper) simultaneously bisects the task graph (minimizing cut) and the
processor set (keeping each half compact), assigning task halves to
processor halves; recursion bottoms out at one task per processor. The
original targets hypercubes; this implementation splits *any* topology by
growing one compact half with BFS over the processor graph, so grids and
arbitrary machines work too.

A useful structural baseline: divisive where TopoLB is agglomerative.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.mapping.base import Mapper, Mapping
from repro.partition.recursive_bisection import RecursiveBisectionPartitioner
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["RecursiveEmbeddingMapper"]


class RecursiveEmbeddingMapper(Mapper):
    """ARM-style simultaneous recursive bisection of tasks and processors."""

    strategy_name = "RecursiveEmbed"

    def __init__(self, seed: int | np.random.Generator | None = 0):
        self._seed = seed

    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        n = self._check_sizes(graph, topology)
        rng = as_rng(self._seed)
        assignment = np.full(n, -1, dtype=np.int64)
        self._embed(graph, topology, np.arange(n), np.arange(n), assignment, rng)
        return Mapping(graph, topology, assignment)

    # ------------------------------------------------------------------ core
    def _embed(self, graph: TaskGraph, topology: Topology, tasks: np.ndarray,
               procs: np.ndarray, assignment: np.ndarray,
               rng: np.random.Generator) -> None:
        if len(tasks) == 1:
            assignment[tasks[0]] = procs[0]
            return
        k1 = len(tasks) // 2
        k2 = len(tasks) - k1

        # Task side: balanced mincut-ish bisection (graph growing).
        splitter = RecursiveBisectionPartitioner(seed=rng)
        side_a = splitter._grow_bisection(graph, tasks, k1, k2, rng)
        tasks_a, tasks_b = tasks[side_a], tasks[~side_a]

        # Processor side: grow a compact region of matching size by BFS.
        procs_a_mask = self._grow_proc_region(topology, procs, len(tasks_a), rng)
        procs_a, procs_b = procs[procs_a_mask], procs[~procs_a_mask]

        self._embed(graph, topology, tasks_a, procs_a, assignment, rng)
        self._embed(graph, topology, tasks_b, procs_b, assignment, rng)

    @staticmethod
    def _grow_proc_region(topology: Topology, procs: np.ndarray, size: int,
                          rng: np.random.Generator) -> np.ndarray:
        """Boolean mask over ``procs``: a BFS-compact region of ``size``."""
        member = {int(v): i for i, v in enumerate(procs)}
        picked = np.zeros(len(procs), dtype=bool)
        # Seed from a corner-ish processor: the member with the largest mean
        # distance to the others (deterministic compact growth).
        sub = procs.astype(np.int64)
        mean_dist = np.array(
            [topology.distance_row(int(v))[sub].mean() for v in sub]
        )
        seed = int(sub[int(np.argmax(mean_dist))])
        queue: deque[int] = deque([seed])
        seen = {seed}
        count = 0
        while count < size:
            if not queue:
                remaining = procs[~picked]
                nxt = int(remaining[0])
                queue.append(nxt)
                seen.add(nxt)
            v = queue.popleft()
            i = member[v]
            if picked[i]:
                continue
            picked[i] = True
            count += 1
            for nbr in topology.neighbors(v):
                if nbr in member and nbr not in seen and not picked[member[nbr]]:
                    queue.append(nbr)
                    seen.add(nbr)
        return picked
