"""Baseline mappers: random placement and the identity/isomorphism map.

Random placement is the paper's baseline everywhere (GreedyLB's placement is
"essentially random" from the topology's point of view); the identity map is
the optimal mapping for Table 1, where the task pattern is an isomorphic
sub-grid of the machine.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping, resolve_allowed
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["RandomMapper", "IdentityMapper"]


class RandomMapper(Mapper):
    """Uniformly random bijection task → processor.

    Expected hops-per-byte equals the topology's expected random-pair
    distance (``sqrt(p)/2`` on a square 2D torus, ``3 cbrt(p)/4`` on a cubic
    3D torus — the dashed analytic lines of Figures 1 and 3).
    """

    strategy_name = "RandomLB"

    def __init__(self, seed: int | np.random.Generator | None = None):
        self._seed = seed

    def map(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
    ) -> Mapping:
        allowed = resolve_allowed(topology, allowed)
        n = self._check_sizes(graph, topology, allowed)
        rng = as_rng(self._seed)
        if allowed is None:
            return Mapping(graph, topology, rng.permutation(n))
        # Random injection into the allowed set: permute the healthy ids and
        # take the first n (uniform over injective placements).
        healthy = np.flatnonzero(allowed)
        return Mapping(graph, topology, rng.permutation(healthy)[:n])


class IdentityMapper(Mapper):
    """Task ``t`` goes to processor ``t``.

    When the task pattern was generated with the same C-order grid layout as
    the topology (e.g. an ``(8,8,8)`` Jacobi pattern on an ``(8,8,8)`` mesh),
    this is the paper's "simple isomorphism mapping": every message travels
    exactly one hop.
    """

    strategy_name = "IdentityLB"

    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        n = self._check_sizes(graph, topology)
        return Mapping(graph, topology, np.arange(n))
