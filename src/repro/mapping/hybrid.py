"""HybridTopoLB — the paper's future-work direction, implemented.

The conclusions note: "Due to the massively large sizes of machines like
Bluegene, a distributed approach toward keeping communication localized in a
neighborhood may be needed for scalability ... Hybrid approaches
(semi-distributed) ... need to be investigated further."

This mapper is that semi-distributed scheme:

1. carve the machine into ``num_blocks`` compact processor blocks (BFS
   growth over the processor graph),
2. partition the task graph into the same number of groups (multilevel,
   comm-reducing),
3. map groups onto blocks with TopoLB on the *block quotient machine*
   (block-to-block distance = mean inter-block processor distance),
4. within each block, map the group's tasks onto the block's processors
   with TopoLB on a :class:`~repro.topology.subset.SubTopology`.

Each TopoLB instance sees a problem of size ``B`` or ``p/B`` instead of
``p``, so the cubic-ish constants shrink dramatically — the scalability
win the paper anticipates — at a small hop-byte penalty (quantified in
``benchmarks/test_ablation_hybrid.py``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping
from repro.mapping.topolb import TopoLB
from repro.partition.multilevel import MultilevelPartitioner
from repro.taskgraph.coalesce import coalesce
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.topology.matrix import MatrixTopology
from repro.topology.subset import SubTopology
from repro.utils.rng import as_rng

__all__ = ["HybridTopoLB", "grow_processor_blocks"]


def grow_processor_blocks(
    topology: Topology, num_blocks: int,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Partition processors into ``num_blocks`` compact, equal-size blocks.

    Multi-source BFS: seeds spread by farthest-point sampling, then blocks
    grow breadth-first in round-robin, each claiming unowned processors,
    capped at ``ceil(p / num_blocks)`` members.
    """
    p = topology.num_nodes
    if not 1 <= num_blocks <= p:
        raise MappingError(f"num_blocks must be in [1, {p}], got {num_blocks}")
    rng = as_rng(seed)
    cap = -(-p // num_blocks)  # ceil

    # Farthest-point seeds.
    seeds = [int(rng.integers(0, p))]
    min_dist = topology.distance_row(seeds[0]).astype(np.float64)
    for _ in range(num_blocks - 1):
        nxt = int(np.argmax(min_dist))
        seeds.append(nxt)
        min_dist = np.minimum(min_dist, topology.distance_row(nxt))

    owner = np.full(p, -1, dtype=np.int64)
    queues = []
    counts = np.zeros(num_blocks, dtype=np.int64)
    for b, s in enumerate(seeds):
        owner[s] = b
        counts[b] = 1
        queues.append(deque([s]))

    claimed = int(num_blocks)
    while claimed < p:
        progress = False
        for b in range(num_blocks):
            # Round-robin growth: each block expands frontier nodes until it
            # claims at least one processor (or exhausts its frontier), so
            # blocks grow at matched rates and stay compact.
            while queues[b] and counts[b] < cap:
                v = queues[b].popleft()
                claimed_here = False
                for nbr in topology.neighbors(v):
                    if owner[nbr] < 0 and counts[b] < cap:
                        owner[nbr] = b
                        counts[b] += 1
                        claimed += 1
                        queues[b].append(nbr)
                        claimed_here = True
                if claimed_here:
                    progress = True
                    break
        if not progress:
            # Disconnected leftovers (or all frontiers exhausted/capped):
            # hand each orphan to the nearest under-cap block.
            for v in np.flatnonzero(owner < 0):
                row = topology.distance_row(int(v))
                open_blocks = np.flatnonzero(counts < cap)
                best = min(
                    open_blocks,
                    key=lambda b: min(row[owner == b]) if (owner == b).any() else np.inf,
                )
                owner[v] = best
                counts[best] += 1
                claimed += 1
    return owner


class HybridTopoLB(Mapper):
    """Two-level (semi-distributed) TopoLB: groups -> blocks, tasks -> block."""

    strategy_name = "HybridTopoLB"

    def __init__(self, num_blocks: int = 8,
                 seed: int | np.random.Generator | None = 0):
        if num_blocks < 1:
            raise MappingError(f"num_blocks must be >= 1, got {num_blocks}")
        self._num_blocks = int(num_blocks)
        self._seed = seed

    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        n = self._check_sizes(graph, topology)
        blocks = min(self._num_blocks, n)
        if blocks == 1:
            return TopoLB().map(graph, topology)
        rng = as_rng(self._seed)

        # --- level 1: blocks of processors, groups of tasks ---------------
        owner = grow_processor_blocks(topology, blocks, rng)
        # Partition by *count* (unit weights): within-block mapping must be
        # bijective, so group sizes have to match block sizes exactly after
        # reconciliation.
        unit_graph = TaskGraph(
            n, graph.edges(), vertex_weights=np.ones(n)
        )
        groups = np.asarray(
            MultilevelPartitioner(seed=rng).partition(unit_graph, blocks),
            dtype=np.int64,
        )
        quotient = coalesce(graph, groups, blocks)

        block_machine = self._block_machine(topology, owner, blocks)
        group_to_block = TopoLB().map(quotient, block_machine).assignment

        # Force each group's size to equal its block's size (moves the
        # least-attached tasks of over-full groups toward under-full ones).
        block_sizes = np.bincount(owner, minlength=blocks)
        needed = block_sizes[group_to_block]
        self._reconcile_sizes(graph, groups, needed, blocks)

        # --- level 2: within each block, TopoLB on the subset --------------
        assignment = np.full(n, -1, dtype=np.int64)
        for g in range(blocks):
            b = int(group_to_block[g])
            block_procs = np.flatnonzero(owner == b)
            member_tasks = np.flatnonzero(groups == g)
            sub = SubTopology(topology, block_procs)
            local_graph = graph.induced(member_tasks)
            local = TopoLB().map(local_graph, sub).assignment
            assignment[member_tasks] = sub.parent_nodes[local]
        if (assignment < 0).any():
            raise MappingError("internal: hybrid mapping left tasks unassigned")
        return Mapping(graph, topology, assignment)

    @staticmethod
    def _reconcile_sizes(graph: TaskGraph, groups: np.ndarray,
                         needed: np.ndarray, blocks: int) -> None:
        """Move tasks between groups until ``count(g) == needed[g]`` for all g.

        Each move takes the task of an over-full group with the best
        (attraction to an under-full group) - (attachment to its own group)
        score; total counts match by construction so this terminates.
        """
        counts = np.bincount(groups, minlength=blocks)
        while True:
            over = np.flatnonzero(counts > needed)
            if len(over) == 0:
                return
            g = int(over[0])
            under = np.flatnonzero(counts < needed)
            under_set = set(int(u) for u in under)
            best: tuple[float, int, int] | None = None
            for t in np.flatnonzero(groups == g):
                t = int(t)
                nbrs, wts = graph.neighbor_slice(t)
                conn: dict[int, float] = {}
                for j, c in zip(nbrs.tolist(), wts.tolist()):
                    gg = int(groups[j])
                    conn[gg] = conn.get(gg, 0.0) + c
                internal = conn.get(g, 0.0)
                for h in under_set:
                    score = conn.get(h, 0.0) - internal
                    if best is None or score > best[0]:
                        best = (score, t, h)
            assert best is not None  # counts mismatch implies a move exists
            _, t, h = best
            groups[t] = h
            counts[g] -= 1
            counts[h] += 1

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _block_machine(topology: Topology, owner: np.ndarray, blocks: int) -> Topology:
        """Quotient machine: one node per block, block-mean distances.

        The metric (mean processor distance between blocks) captures the
        machine geometry at block granularity and works for any topology —
        including indirect ones whose blocks share no direct links.
        """
        dist = np.zeros((blocks, blocks), dtype=np.float64)
        members = [np.flatnonzero(owner == b) for b in range(blocks)]
        full = topology.distance_matrix().astype(np.float64, copy=False)
        for a in range(blocks):
            for b in range(a + 1, blocks):
                mean = full[np.ix_(members[a], members[b])].mean()
                dist[a, b] = dist[b, a] = max(mean, 1e-9)
        return MatrixTopology(dist)
