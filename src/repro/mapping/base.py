"""Mapper interface and the :class:`Mapping` result object."""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.exceptions import MappingError
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

__all__ = ["Mapping", "Mapper", "resolve_allowed"]


def resolve_allowed(
    topology: Topology, allowed: np.ndarray | Sequence[bool] | None
) -> np.ndarray | None:
    """Normalize a mapper's allowed-processor mask.

    ``None`` on a :class:`~repro.faults.DegradedTopology` resolves to its
    healthy-processor mask — so ``mapper.map(graph, degraded)`` "just works"
    and never places a task on a dead processor. ``None`` on any other
    topology stays ``None`` (the classic every-processor case). An explicit
    mask is validated (shape ``(p,)``, at least one allowed processor) and
    returned as a boolean copy.
    """
    if allowed is None:
        from repro.faults import DegradedTopology

        if isinstance(topology, DegradedTopology):
            return topology.allowed_mask()
        return None
    mask = np.array(allowed, dtype=bool)
    if mask.shape != (topology.num_nodes,):
        raise MappingError(
            f"allowed mask must have shape ({topology.num_nodes},), "
            f"got {mask.shape}"
        )
    if not mask.any():
        raise MappingError("allowed mask permits no processors at all")
    return mask


class Mapping:
    """An assignment of tasks to processors, with cached quality metrics.

    ``assignment[t]`` is the processor hosting task ``t``. Many-to-one
    assignments are allowed (the pipeline's expanded mappings put whole
    groups on one processor); the phase-2 mappers always produce bijections.
    """

    def __init__(self, graph: TaskGraph, topology: Topology, assignment: Sequence[int]):
        arr = np.asarray(assignment, dtype=np.int64).copy()
        if arr.shape != (graph.num_tasks,):
            raise MappingError(
                f"assignment must have shape ({graph.num_tasks},), got {arr.shape}"
            )
        if len(arr) and (arr.min() < 0 or arr.max() >= topology.num_nodes):
            raise MappingError("assignment references processors outside the topology")
        arr.flags.writeable = False
        self._graph = graph
        self._topology = topology
        self._assignment = arr
        self._hop_bytes: float | None = None

    @property
    def graph(self) -> TaskGraph:
        """The task graph that was mapped."""
        return self._graph

    @property
    def topology(self) -> Topology:
        """The machine the tasks were mapped onto."""
        return self._topology

    @property
    def assignment(self) -> np.ndarray:
        """Read-only task → processor array."""
        return self._assignment

    def processor_of(self, task: int) -> int:
        """Processor hosting ``task``."""
        return int(self._assignment[task])

    def is_bijection(self) -> bool:
        """True when every processor hosts exactly one task."""
        if self._graph.num_tasks != self._topology.num_nodes:
            return False
        return self.is_injective()

    def is_injective(self) -> bool:
        """True when no processor hosts more than one task.

        Weaker than :meth:`is_bijection`: on a degraded machine a valid
        one-task-per-processor mapping covers only the healthy subset, so it
        is injective without being a bijection over all ``p`` processors.
        """
        return len(np.unique(self._assignment)) == self._graph.num_tasks

    @property
    def hop_bytes(self) -> float:
        """Total hop-bytes of this mapping (cached).

        Computed through the shared :class:`~repro.mapping.context
        .MappingContext` for this (graph, topology) pair, so repeated
        mappings of the same instance reuse one set of edge/distance tables
        instead of re-deriving them per Mapping object.
        """
        if self._hop_bytes is None:
            from repro.mapping.context import context_for

            self._hop_bytes = context_for(
                self._graph, self._topology
            ).hop_bytes(self._assignment)
        return self._hop_bytes

    @property
    def hops_per_byte(self) -> float:
        """Average hops traveled per communicated byte."""
        from repro.mapping.metrics import hops_ratio

        return hops_ratio(self.hop_bytes, self._graph.total_bytes)

    def with_assignment(self, assignment: Sequence[int]) -> "Mapping":
        """A new Mapping over the same graph/topology (used by refiners)."""
        return Mapping(self._graph, self._topology, assignment)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Mapping n={self._graph.num_tasks} on {self._topology.name} "
            f"hops/byte={self.hops_per_byte:.3f}>"
        )


class Mapper(abc.ABC):
    """Strategy interface: produce a :class:`Mapping` for (graph, topology).

    Phase-2 mappers require ``graph.num_tasks == topology.num_nodes`` (one
    group per processor, as the paper assumes after partitioning); they raise
    :class:`~repro.exceptions.MappingError` otherwise.
    """

    #: Class-level strategy name used by the runtime registry.
    strategy_name: str = "mapper"

    def _check_sizes(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
    ) -> int:
        if allowed is not None:
            capacity = int(allowed.sum())
            if graph.num_tasks > capacity:
                raise MappingError(
                    f"{type(self).__name__} cannot place {graph.num_tasks} "
                    f"tasks on {capacity} allowed processors of "
                    f"{topology.name} (insufficient healthy capacity)"
                )
            return graph.num_tasks
        if graph.num_tasks != topology.num_nodes:
            raise MappingError(
                f"{type(self).__name__} needs |tasks| == |processors|; "
                f"got {graph.num_tasks} tasks on {topology.num_nodes} processors "
                "(partition/coalesce first, e.g. via TwoPhaseMapper)"
            )
        return graph.num_tasks

    @abc.abstractmethod
    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        """Compute a mapping of ``graph`` onto ``topology``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"
