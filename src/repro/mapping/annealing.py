"""Simulated-annealing mapper — the physical-optimization comparison class.

The paper's related-work section (Bollinger & Midkiff; Arunkumar &
Chockalingam) notes that physical optimization "produce[s] high-quality
solutions (better than heuristic algorithms)" but is "very slow ...
unacceptable in a practical scenario". This mapper exists to reproduce that
trade-off as an ablation: given enough steps it edges out TopoLB on
hop-bytes, at orders of magnitude more wall-clock.

Standard Metropolis annealing over pairwise swaps, with the same maintained
first-order cost table the swap refiner uses, so each proposal is O(1)-ish
to evaluate and O(p * deg) to commit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping
from repro.mapping.random_map import RandomMapper
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["SimulatedAnnealingMapper"]


class SimulatedAnnealingMapper(Mapper):
    """Metropolis pairwise-swap annealing on hop-bytes.

    Parameters
    ----------
    base:
        Mapper producing the starting mapping (default: seeded random).
    steps:
        Total proposed swaps. The classic quality/time dial: ~100 p steps
        already beats greedy heuristics on small machines; the paper's point
        is how expensive that is.
    t0_factor:
        Initial temperature as a fraction of the starting hop-bytes (so the
        schedule is scale-free in the edge weights).
    cooling:
        Geometric cooling factor applied every ``p`` proposals.
    seed:
        RNG seed for proposals and acceptance.
    """

    strategy_name = "AnnealLB"

    def __init__(
        self,
        base: Mapper | None = None,
        steps: int = 20_000,
        t0_factor: float = 0.05,
        cooling: float = 0.95,
        seed: int | np.random.Generator | None = 0,
    ):
        if steps < 1:
            raise MappingError(f"steps must be >= 1, got {steps}")
        if not 0 < cooling < 1:
            raise MappingError(f"cooling must be in (0, 1), got {cooling}")
        if t0_factor <= 0:
            raise MappingError(f"t0_factor must be positive, got {t0_factor}")
        self._base = base
        self._steps = int(steps)
        self._t0_factor = float(t0_factor)
        self._cooling = float(cooling)
        self._seed = seed

    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        n = self._check_sizes(graph, topology)
        rng = as_rng(self._seed)
        base = self._base if self._base is not None else RandomMapper(seed=rng)
        start = base.map(graph, topology)
        if n < 2:
            return start

        dist = topology.distance_matrix().astype(np.float64, copy=False)
        indptr, indices, weights = graph.csr_arrays()
        assign = start.assignment.copy()

        # Maintained first-order cost table (see refine.py for the algebra).
        cost = np.asarray(graph.adjacency_csr() @ dist[assign])
        edge_w = {}
        for a, b, w in graph.edges():
            edge_w[(a, b)] = w
            edge_w[(b, a)] = w

        current_hb = start.hop_bytes
        best_hb = current_hb
        best_assign = assign.copy()
        temperature = max(self._t0_factor * max(current_hb, 1.0), 1e-12)

        pairs = rng.integers(0, n, size=(self._steps, 2))
        accepts = rng.random(self._steps)
        for step in range(self._steps):
            a, b = int(pairs[step, 0]), int(pairs[step, 1])
            if a == b:
                continue
            pa, pb = int(assign[a]), int(assign[b])
            delta = (
                cost[a, pb] + cost[b, pa] - cost[a, pa] - cost[b, pb]
                + 2.0 * edge_w.get((a, b), 0.0) * dist[pa, pb]
            )
            if delta <= 0 or accepts[step] < math.exp(-delta / temperature):
                assign[a], assign[b] = pb, pa
                move = dist[pb] - dist[pa]
                for t, sign in ((a, 1.0), (b, -1.0)):
                    lo, hi = indptr[t], indptr[t + 1]
                    for j, c in zip(indices[lo:hi], weights[lo:hi]):
                        cost[int(j)] += sign * c * move
                current_hb += delta
                if current_hb < best_hb:
                    best_hb = current_hb
                    best_assign = assign.copy()
            if step % n == n - 1:
                temperature *= self._cooling
        return Mapping(graph, topology, best_assign)
