"""TwoPhaseMapper — the paper's partition-then-map pipeline (Section 4).

Phase 1 partitions the ``n`` compute objects into ``p`` balanced groups with
a topology-oblivious partitioner (METIS substitute by default). Phase 2
coalesces the task graph along the partition and maps the ``p`` groups onto
the ``p`` processors with a topology-aware mapper (TopoLB by default),
optionally followed by the RefineTopoLB swap refiner. The returned
:class:`~repro.mapping.base.Mapping` is over the *original* tasks: task
``t`` lands on the processor assigned to its group.
"""

from __future__ import annotations

import numpy as np

import inspect

from repro import obs
from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping, resolve_allowed
from repro.mapping.context import MappingContext, context_for
from repro.mapping.refine import RefineTopoLB
from repro.partition.base import Partitioner
from repro.taskgraph.coalesce import coalesce
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

__all__ = ["TwoPhaseMapper"]


class TwoPhaseMapper(Mapper):
    """Partition → coalesce → map → (refine) → expand.

    Parameters
    ----------
    partitioner:
        Phase-1 strategy; defaults to the multilevel METIS substitute.
    mapper:
        Phase-2 strategy; defaults to second-order TopoLB.
    refiner:
        Optional :class:`RefineTopoLB` applied to the group-level mapping.
    """

    strategy_name = "TwoPhase"

    def __init__(
        self,
        partitioner: Partitioner | None = None,
        mapper: Mapper | None = None,
        refiner: RefineTopoLB | None = None,
    ):
        if partitioner is None:
            from repro.partition.multilevel import MultilevelPartitioner

            partitioner = MultilevelPartitioner()
        if mapper is None:
            from repro.mapping.topolb import TopoLB

            mapper = TopoLB()
        self._partitioner = partitioner
        self._mapper = mapper
        self._refiner = refiner
        self._last_groups: np.ndarray | None = None
        self._last_group_mapping: Mapping | None = None

    @property
    def last_groups(self) -> np.ndarray | None:
        """The most recent phase-1 group assignment (for diagnostics)."""
        return self._last_groups

    @property
    def last_group_mapping(self) -> Mapping | None:
        """The most recent group-level mapping (for hop-byte accounting)."""
        return self._last_group_mapping

    def map(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
        *,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        """Map ``graph``; on a degraded machine (or with an explicit
        ``allowed`` mask) phase 1 partitions into one group per *healthy*
        processor and phase 2 places groups on the allowed set only.

        ``ctx`` is the shared context for ``(graph, topology)``; phase 2
        derives (and shares) its own context for the coalesced quotient
        graph, since that is the graph the mapper and refiner actually see.
        """
        allowed = resolve_allowed(topology, allowed)
        p = topology.num_nodes if allowed is None else int(allowed.sum())
        if allowed is not None and not self._accepts_allowed(self._mapper):
            raise MappingError(
                f"{type(self._mapper).__name__} does not support an "
                "allowed-processor mask; use TopoLB/TopoCentLB/RefineTopoLB "
                "on degraded machines"
            )
        if graph.num_tasks == p or (allowed is not None and graph.num_tasks < p):
            # One task per (healthy) processor — or fewer tasks than healthy
            # processors, which the masked mappers place directly: phase 1
            # is the identity.
            groups = np.arange(graph.num_tasks)
            quotient = graph
        else:
            with obs.timer("pipeline.partition"):
                groups = np.asarray(
                    self._partitioner.partition(graph, p), dtype=np.int64
                )
            with obs.timer("pipeline.coalesce"):
                quotient = coalesce(graph, groups, p)

        # One shared context for the graph phase 2 actually maps: the
        # quotient when partitioning ran, the original graph otherwise.
        if quotient is graph and ctx is not None:
            qctx = ctx
        else:
            qctx = context_for(quotient, topology)
        ctx_kwargs = {"ctx": qctx} if self._accepts_ctx(self._mapper) else {}
        with obs.timer("pipeline.map"):
            if allowed is None:
                group_mapping = self._mapper.map(quotient, topology, **ctx_kwargs)
            else:
                group_mapping = self._mapper.map(
                    quotient, topology, allowed=allowed, **ctx_kwargs
                )
        if self._refiner is not None:
            with obs.timer("pipeline.refine"):
                group_mapping = self._refiner.refine(
                    group_mapping, allowed=allowed, ctx=qctx
                )

        self._last_groups = groups
        self._last_group_mapping = group_mapping
        return Mapping(graph, topology, group_mapping.assignment[groups])

    @staticmethod
    def _accepts_allowed(mapper: Mapper) -> bool:
        return "allowed" in inspect.signature(mapper.map).parameters

    @staticmethod
    def _accepts_ctx(mapper: Mapper) -> bool:
        return "ctx" in inspect.signature(mapper.map).parameters
