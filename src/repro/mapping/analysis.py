"""Closed-form expectations for random placement (Section 5.2 analytics).

The paper overlays its random-placement measurements with the expected
distance between two uniformly random processors: ``sqrt(p)/2`` on a square
2D torus and ``3 * cbrt(p) / 4`` on a cubic 3D torus. Any topology exposing
``expected_random_distance`` is supported; arbitrary graphs fall back to the
exact mean over the distance matrix.

A subtlety the paper elides: sampling two *distinct* processors (a random
bijection never maps two communicating tasks to the same processor) has a
slightly larger mean than sampling with replacement — the factor is
``p / (p - 1)`` because the distance-0 diagonal is excluded. Both variants
are available; the difference vanishes at the paper's scales.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import Topology

__all__ = [
    "expected_random_pair_distance",
    "expected_random_hops_per_byte",
]


def expected_random_pair_distance(topology: Topology, distinct: bool = False) -> float:
    """E[d(a, b)] for uniformly random processors ``a``, ``b``.

    With ``distinct=True`` the pair is sampled without replacement, matching
    what a random bijective mapping does to a communicating task pair.
    """
    fn = getattr(topology, "expected_random_distance", None)
    mean = float(fn()) if fn is not None else float(topology.average_distance())
    if distinct:
        p = topology.num_nodes
        if p > 1:
            mean *= p / (p - 1)
    return mean


def expected_random_hops_per_byte(topology: Topology, distinct: bool = False) -> float:
    """Expected hops-per-byte of a random mapping of *any* task graph.

    By linearity of expectation every edge's endpoints land on a uniformly
    random (distinct) processor pair, so the byte-weighted mean distance is
    independent of the communication pattern — the reason Figures 1 and 3
    can draw a single analytic curve.
    """
    return expected_random_pair_distance(topology, distinct=distinct)
