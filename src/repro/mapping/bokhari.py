"""Bokhari's mapping algorithm — the original 1981 approach.

The paper's first related-work citation: "Bokhari uses the number of edges
of the task graph whose end points map to neighbors in the processor graph
as the cost metric. The algorithm starts with an initial mapping and
performs pairwise exchanges to improve the metric."

The *cardinality* metric counts edges mapped onto single machine links —
it ignores byte volumes and longer distances entirely, which is exactly why
hop-bytes superseded it: two mappings with equal cardinality can differ
wildly in contention. Implementing it faithfully lets the benchmarks show
that gap (``test_ablation_objectives``): Bokhari-optimal mappings are good
but measurably worse in hop-bytes than TopoLB's on weighted instances.

Algorithm: start from an initial mapping (random by default); sweep over
task pairs applying any exchange that increases cardinality; on quiescence
apply a random jump (Bokhari's probabilistic restart) and keep the best
mapping seen, for a bounded number of jumps.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["BokhariMapper", "cardinality"]


def cardinality(mapping: Mapping) -> int:
    """Bokhari's metric: task edges whose endpoints are machine neighbors."""
    graph, topo = mapping.graph, mapping.topology
    assign = mapping.assignment
    u, v, _ = graph.edge_arrays()
    if len(u) == 0:
        return 0
    mat = topo.distance_matrix()
    return int((mat[assign[u], assign[v]] == 1).sum())


class BokhariMapper(Mapper):
    """Pairwise-exchange maximization of the cardinality metric."""

    strategy_name = "BokhariLB"

    def __init__(self, jumps: int = 4, max_sweeps: int = 12,
                 seed: int | np.random.Generator | None = 0):
        if jumps < 0:
            raise MappingError(f"jumps must be >= 0, got {jumps}")
        if max_sweeps < 1:
            raise MappingError(f"max_sweeps must be >= 1, got {max_sweeps}")
        self._jumps = int(jumps)
        self._max_sweeps = int(max_sweeps)
        self._seed = seed

    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        n = self._check_sizes(graph, topology)
        rng = as_rng(self._seed)
        dist = topology.distance_matrix()
        adjacent = dist == 1
        indptr, indices, _ = graph.csr_arrays()

        def card_of_task(t: int, assign: np.ndarray, proc: int) -> int:
            """Edges of t landing on machine links if t sat on ``proc``."""
            lo, hi = indptr[t], indptr[t + 1]
            nbr_procs = assign[indices[lo:hi]]
            return int(adjacent[proc, nbr_procs].sum())

        def climb(assign: np.ndarray) -> tuple[np.ndarray, int]:
            total = self._total_cardinality(graph, adjacent, assign)
            for _sweep in range(self._max_sweeps):
                improved = False
                for a in range(n):
                    for b in range(a + 1, n):
                        pa, pb = int(assign[a]), int(assign[b])
                        before = (card_of_task(a, assign, pa)
                                  + card_of_task(b, assign, pb))
                        assign[a], assign[b] = pb, pa
                        after = (card_of_task(a, assign, pb)
                                 + card_of_task(b, assign, pa))
                        # The a-b edge (if any) is counted once on each side
                        # before and after, so the comparison is consistent.
                        if after > before:
                            total += after - before
                            improved = True
                        else:
                            assign[a], assign[b] = pa, pb
                if not improved:
                    break
            return assign, self._total_cardinality(graph, adjacent, assign)

        best_assign = rng.permutation(n)
        best_assign, best_card = climb(best_assign.copy())
        for _jump in range(self._jumps):
            candidate = best_assign.copy()
            # Probabilistic jump: scramble a random quarter of the tasks.
            k = max(2, n // 4)
            chosen = rng.choice(n, size=k, replace=False)
            candidate[chosen] = candidate[np.roll(chosen, 1)]
            candidate, card = climb(candidate)
            if card > best_card:
                best_assign, best_card = candidate, card
        return Mapping(graph, topology, best_assign)

    @staticmethod
    def _total_cardinality(graph: TaskGraph, adjacent: np.ndarray,
                           assign: np.ndarray) -> int:
        u, v, _ = graph.edge_arrays()
        if len(u) == 0:
            return 0
        return int(adjacent[assign[u], assign[v]].sum())
