"""Incremental topology-aware rebalancing of an existing placement.

Charm++'s production pattern is not "remap everything every step": a
``Refine``-class balancer perturbs the *current* placement just enough to
restore load balance, because every migrated object pays serialization
(PUP) and transfer costs. :class:`IncrementalRefineLB` is that balancer with
the paper's topology-awareness: when a task must leave an overloaded
processor, it goes to the underloaded processor where its communication
costs the fewest additional hop-bytes.

Works on many-to-one placements (the general ``n > p`` case); bijections are
a special case it leaves alone (nothing is overloaded).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapping
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

__all__ = ["IncrementalRefineLB"]


class IncrementalRefineLB:
    """Move as few tasks as possible to restore balance, minimizing hop-bytes.

    Parameters
    ----------
    imbalance_tol:
        Target ceiling: no processor may exceed ``tol * mean load`` after
        rebalancing (when achievable — a single task heavier than the
        ceiling is left where it is).
    max_moves:
        Safety bound on migrations per call (default ``2 n``).
    """

    strategy_name = "IncrementalRefineLB"

    def __init__(self, imbalance_tol: float = 1.10, max_moves: int | None = None):
        if imbalance_tol < 1.0:
            raise MappingError(f"imbalance_tol must be >= 1.0, got {imbalance_tol}")
        self._tol = float(imbalance_tol)
        self._max_moves = max_moves

    def rebalance(
        self, mapping: Mapping, allowed: np.ndarray | None = None
    ) -> tuple[Mapping, np.ndarray]:
        """Return (new mapping, bool mask of migrated tasks).

        ``allowed`` restricts destinations to a boolean processor mask
        (survivors of a node failure); the load mean is then taken over the
        allowed processors only, so dead processors neither receive tasks
        nor drag the balance target down.
        """
        graph, topology = mapping.graph, mapping.topology
        n, p = graph.num_tasks, topology.num_nodes
        assign = mapping.assignment.copy()
        weights = graph.vertex_weights
        dist = topology.distance_matrix().astype(np.float64, copy=False)

        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
            if allowed.shape != (p,):
                raise MappingError(
                    f"allowed mask must have shape ({p},), got {allowed.shape}"
                )
            if not allowed.any():
                raise MappingError("allowed mask permits no processors at all")

        loads = np.bincount(assign, weights=weights, minlength=p).astype(np.float64)
        active = int(allowed.sum()) if allowed is not None else p
        mean = (loads.sum() if allowed is None else loads[allowed].sum()) / active
        ceiling = self._tol * mean if mean > 0 else np.inf
        moved = np.zeros(n, dtype=bool)
        budget = self._max_moves if self._max_moves is not None else 2 * n

        for _ in range(budget):
            src = int(np.argmax(loads))
            if loads[src] <= ceiling:
                break
            members = np.flatnonzero(assign == src)
            if len(members) <= 1:
                break  # one giant task; nothing to split
            if allowed is None:
                under = np.flatnonzero(loads < mean)
            else:
                under = np.flatnonzero(allowed & (loads < mean))
            if len(under) == 0:
                break
            best: tuple[float, int, int] | None = None
            for t in members:
                t = int(t)
                w = float(weights[t])
                if w <= 0 and len(members) > 1:
                    continue  # moving free tasks doesn't help balance
                nbrs, wts = graph.neighbor_slice(t)
                if len(nbrs):
                    nbr_procs = assign[nbrs]
                    # hop-byte delta of moving t to each candidate proc
                    cost_vec = wts @ dist[np.ix_(nbr_procs, under)]
                    cur_cost = float(wts @ dist[nbr_procs, src])
                    deltas = cost_vec - cur_cost
                else:
                    deltas = np.zeros(len(under))
                for idx in np.argsort(deltas)[:3]:  # few best destinations
                    dst = int(under[idx])
                    if loads[dst] + w > ceiling and loads[dst] + w >= loads[src]:
                        continue
                    cand = (float(deltas[idx]), t, dst)
                    if best is None or cand[0] < best[0]:
                        best = cand
            if best is None:
                break
            delta, t, dst = best
            assign[t] = dst
            loads[src] -= weights[t]
            loads[dst] += weights[t]
            moved[t] = True

        return mapping.with_assignment(assign), moved
