"""On-demand compiled kernel for the incremental refine sweep.

``repro.mapping.refine_kernel.c`` holds a scalar C implementation of one
RefineTopoLB sweep with the incremental delta structure. This module
compiles it with the system C compiler (``cc``/``gcc``/``clang``) the first
time it is needed, caches the shared object under the system temp directory
keyed by a hash of the source and build flags, and loads it through
:mod:`ctypes` — no third-party build dependency.

The compiled path is strictly optional: :class:`~repro.mapping.refine.
RefineTopoLB` falls back to the pure-NumPy incremental kernel when no
toolchain is available (or when ``REPRO_NO_NATIVE`` is set, which the test
suite uses to pin both paths). ``-ffp-contract=off`` keeps the C arithmetic
bitwise identical to the NumPy reference kernel — no fused multiply-adds.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

__all__ = ["load", "available"]

_SOURCE = os.path.join(os.path.dirname(__file__), "refine_kernel.c")
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_lock = threading.Lock()
_UNSET = object()
_cached: object = _UNSET


class NativeRefine:
    """Thin typed wrapper around the compiled sweep function."""

    def __init__(self, lib: ctypes.CDLL):
        fn = lib.refine_sweep_incremental
        i64 = ctypes.c_int64
        arr = np.ctypeslib.ndpointer
        fn.restype = i64
        fn.argtypes = [
            i64, i64,
            arr(np.float64, flags="C_CONTIGUOUS"),  # cost (n, p)
            arr(np.float64, flags="C_CONTIGUOUS"),  # dist (p, p)
            arr(np.int64, flags="C_CONTIGUOUS"),    # assign (n)
            arr(np.int64, flags="C_CONTIGUOUS"),    # indptr (n + 1)
            arr(np.int64, flags="C_CONTIGUOUS"),    # indices (nnz)
            arr(np.float64, flags="C_CONTIGUOUS"),  # weights (nnz)
            arr(np.int64, flags="C_CONTIGUOUS"),    # perm (n)
            arr(np.int64, flags="C_CONTIGUOUS"),    # best_b (n)
            arr(np.float64, flags="C_CONTIGUOUS"),  # best_val (n)
            arr(np.uint8, flags="C_CONTIGUOUS"),    # valid (n)
            arr(np.int64, flags="C_CONTIGUOUS"),    # stats (4)
        ]
        self._fn = fn

    def sweep(self, cost, dist, assign, indptr, indices, weights, perm,
              best_b, best_val, valid, stats) -> bool:
        n, p = cost.shape
        rc = self._fn(n, p, cost, dist, assign, indptr, indices, weights,
                      perm, best_b, best_val, valid, stats)
        if rc < 0:  # pragma: no cover - allocation failure inside C
            raise MemoryError("refine_sweep_incremental scratch allocation")
        return bool(rc)


def _compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    uid = getattr(os, "getuid", lambda: 0)()
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def _build() -> NativeRefine | None:
    cc = _compiler()
    if cc is None:
        return None
    with open(_SOURCE, "rb") as fh:
        source = fh.read()
    key = hashlib.sha256(
        source + repr((_CFLAGS, os.path.basename(cc))).encode()
    ).hexdigest()[:16]
    outdir = _cache_dir()
    os.makedirs(outdir, exist_ok=True)
    so_path = os.path.join(outdir, f"refine_kernel_{key}.so")
    if not os.path.exists(so_path):
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=outdir)
        os.close(fd)
        try:
            subprocess.run(
                [cc, *_CFLAGS, "-o", tmp, _SOURCE],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(tmp, so_path)  # atomic: concurrent builds both win
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    return NativeRefine(ctypes.CDLL(so_path))


def load() -> NativeRefine | None:
    """The compiled sweep, or ``None`` when unavailable.

    ``REPRO_NO_NATIVE`` is consulted on every call (so tests can flip the
    fallback path with a plain env monkeypatch); the build itself — including
    failure — runs once and is remembered for the life of the process.
    """
    global _cached
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    with _lock:
        if _cached is _UNSET:
            try:
                _cached = _build()
            except Exception:
                _cached = None
        return _cached  # type: ignore[return-value]


def available() -> bool:
    """True when the compiled sweep can be used in this process."""
    return load() is not None
