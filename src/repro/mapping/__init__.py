"""Topology-aware task mapping — the paper's core contribution.

Given a task graph with ``p`` vertices (usually the coalesced output of the
partitioning phase) and a topology with ``p`` processors, a *mapper* produces
a bijection task → processor minimizing **hop-bytes**:

    HB = sum over edges (a, b) of  c_ab * d(P(a), P(b))

Available mappers:

* :class:`TopoLB` — the paper's Algorithm 1 (criticality-gain greedy with
  first/second/third-order estimation functions),
* :class:`TopoCentLB` — heap-driven greedy (max communication with the placed
  set, first-order placement cost),
* :class:`RefineTopoLB` — hop-bytes-decreasing pairwise-swap refiner,
* :class:`RandomMapper` / :class:`IdentityMapper` — baselines,
* :class:`TwoPhaseMapper` — partition → coalesce → map → expand pipeline for
  task graphs larger than the machine,
* :class:`SimulatedAnnealingMapper` — the physical-optimization comparison
  class (high quality, high cost — the paper's related-work trade-off),
* :class:`RecursiveEmbeddingMapper` — ARM-style divisive embedding,
* :class:`LinearOrderingMapper` — Taura/Chien-style linear arrangement onto
  a snake walk of the machine,
* :class:`SFCMapper` — Hilbert/Morton space-filling-curve matching for
  coordinate-bearing task graphs (Deveci et al.),
* :class:`HybridTopoLB` — the paper's future-work semi-distributed scheme
  (groups → machine blocks, then tasks → block processors).
"""

from repro.mapping.base import Mapper, Mapping
from repro.mapping.metrics import (
    hop_bytes,
    hops_per_byte,
    per_link_loads,
    dilation_stats,
    processor_loads,
    load_imbalance,
)
from repro.mapping.estimation import EstimatorOrder, average_distance_vector
from repro.mapping.kernels import (
    KERNELS,
    DEFAULT_KERNEL,
    get_default_kernel,
    set_default_kernel,
)
from repro.mapping.topolb import TopoLB
from repro.mapping.topocentlb import TopoCentLB
from repro.mapping.refine import RefineTopoLB
from repro.mapping.random_map import RandomMapper, IdentityMapper
from repro.mapping.pipeline import TwoPhaseMapper
from repro.mapping.hierarchical import HierarchicalMapper
from repro.mapping.analysis import expected_random_hops_per_byte
from repro.mapping.annealing import SimulatedAnnealingMapper
from repro.mapping.recursive_embedding import RecursiveEmbeddingMapper
from repro.mapping.linear_order import LinearOrderingMapper, snake_order
from repro.mapping.sfc import SFCMapper, hilbert_indices, morton_indices
from repro.mapping.hybrid import HybridTopoLB, grow_processor_blocks
from repro.mapping.visualize import render_placement, render_link_heat
from repro.mapping.bounds import hop_bytes_lower_bound, optimality_gap
from repro.mapping.incremental import IncrementalRefineLB
from repro.mapping.evolutionary import GeneticMapper
from repro.mapping.bokhari import BokhariMapper, cardinality

__all__ = [
    "Mapper",
    "Mapping",
    "hop_bytes",
    "hops_per_byte",
    "per_link_loads",
    "dilation_stats",
    "processor_loads",
    "load_imbalance",
    "EstimatorOrder",
    "average_distance_vector",
    "KERNELS",
    "DEFAULT_KERNEL",
    "get_default_kernel",
    "set_default_kernel",
    "TopoLB",
    "TopoCentLB",
    "RefineTopoLB",
    "RandomMapper",
    "IdentityMapper",
    "TwoPhaseMapper",
    "HierarchicalMapper",
    "expected_random_hops_per_byte",
    "SimulatedAnnealingMapper",
    "RecursiveEmbeddingMapper",
    "LinearOrderingMapper",
    "snake_order",
    "SFCMapper",
    "hilbert_indices",
    "morton_indices",
    "HybridTopoLB",
    "grow_processor_blocks",
    "render_placement",
    "render_link_heat",
    "hop_bytes_lower_bound",
    "optimality_gap",
    "IncrementalRefineLB",
    "GeneticMapper",
    "BokhariMapper",
    "cardinality",
]
