"""Genetic-algorithm mapper — the second physical-optimization class.

Two of the paper's cited related works are evolutionary: Arunkumar &
Chockalingam's randomized GA and Orduña/Silla/Duato's seeded exchange
search. This mapper implements the standard permutation GA for the mapping
problem:

* individuals are task→processor permutations,
* fitness is (negative) hop-bytes, evaluated vectorized,
* PMX (partially-mapped) crossover preserves permutation validity,
* mutation swaps a few positions,
* tournament selection plus elitism,
* optionally a *seeded* population (Orduña-style): start from a heuristic's
  output plus mutations of it, which converges far faster than random
  initialization — quantified in ``benchmarks/test_ablation_annealing.py``'s
  sibling, ``test_ablation_evolutionary.py``.

Like annealing, this is the quality/time trade the paper's Section 1
contrasts with heuristics ("produce high-quality solutions ... tend to be
very slow").
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping
from repro.mapping.metrics import hop_bytes
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["GeneticMapper"]


class GeneticMapper(Mapper):
    """Permutation GA over mappings.

    Parameters
    ----------
    population:
        Individuals per generation.
    generations:
        Evolution budget.
    elite:
        Top individuals copied unchanged each generation.
    tournament:
        Tournament size for parent selection.
    mutation_swaps:
        Swap mutations applied to each offspring.
    seed_mapper:
        Optional heuristic whose output seeds the initial population
        (the Orduña et al. "seed" idea); the rest starts random.
    seed:
        RNG seed.
    """

    strategy_name = "GeneticLB"

    def __init__(
        self,
        population: int = 40,
        generations: int = 60,
        elite: int = 2,
        tournament: int = 3,
        mutation_swaps: int = 2,
        seed_mapper: Mapper | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        if population < 4:
            raise MappingError(f"population must be >= 4, got {population}")
        if generations < 1:
            raise MappingError(f"generations must be >= 1, got {generations}")
        if not 0 <= elite < population:
            raise MappingError(f"elite must be in [0, population), got {elite}")
        if tournament < 1:
            raise MappingError(f"tournament must be >= 1, got {tournament}")
        self._pop_size = int(population)
        self._generations = int(generations)
        self._elite = int(elite)
        self._tournament = int(tournament)
        self._mutation_swaps = int(mutation_swaps)
        self._seed_mapper = seed_mapper
        self._seed = seed

    # ------------------------------------------------------------------ core
    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        n = self._check_sizes(graph, topology)
        rng = as_rng(self._seed)
        dist = topology.distance_matrix().astype(np.float64, copy=False)
        u, v, w = graph.edge_arrays()

        def fitness(perm: np.ndarray) -> float:
            if len(w) == 0:
                return 0.0
            return float(np.dot(w, dist[perm[u], perm[v]]))

        # --- initial population -------------------------------------------
        population = [rng.permutation(n) for _ in range(self._pop_size)]
        if self._seed_mapper is not None:
            seeded = self._seed_mapper.map(graph, topology).assignment.copy()
            population[0] = seeded
            for i in range(1, min(4, self._pop_size)):
                population[i] = self._mutate(seeded.copy(), rng)
        scores = np.array([fitness(p) for p in population])

        for _gen in range(self._generations):
            order = np.argsort(scores)
            next_pop = [population[int(i)].copy() for i in order[: self._elite]]
            while len(next_pop) < self._pop_size:
                a = self._select(scores, rng)
                b = self._select(scores, rng)
                child = self._pmx(population[a], population[b], rng)
                next_pop.append(self._mutate(child, rng))
            population = next_pop
            scores = np.array([fitness(p) for p in population])

        best = population[int(np.argmin(scores))]
        return Mapping(graph, topology, best)

    # ------------------------------------------------------------- operators
    def _select(self, scores: np.ndarray, rng: np.random.Generator) -> int:
        """Tournament selection: best (lowest hop-bytes) of k random picks."""
        picks = rng.integers(0, len(scores), size=self._tournament)
        return int(picks[int(np.argmin(scores[picks]))])

    @staticmethod
    def _pmx(parent_a: np.ndarray, parent_b: np.ndarray,
             rng: np.random.Generator) -> np.ndarray:
        """Partially-mapped crossover: copy a slice of A, fill from B."""
        n = len(parent_a)
        lo, hi = sorted(int(x) for x in rng.integers(0, n, size=2))
        hi += 1
        child = np.full(n, -1, dtype=np.int64)
        child[lo:hi] = parent_a[lo:hi]
        used = set(child[lo:hi].tolist())
        fill = [g for g in parent_b.tolist() if g not in used]
        idx = 0
        for i in list(range(0, lo)) + list(range(hi, n)):
            child[i] = fill[idx]
            idx += 1
        return child

    def _mutate(self, perm: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for _ in range(self._mutation_swaps):
            i, j = rng.integers(0, len(perm), size=2)
            perm[i], perm[j] = perm[j], perm[i]
        return perm
