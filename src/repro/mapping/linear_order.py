"""Linear-ordering mapper — the Taura & Chien comparison class.

The paper's related work cites Taura & Chien's scheme: "tasks are linearly
ordered with more communicating tasks placed closer, and the tasks are
mapped in this order". This mapper reproduces that family:

* the **task order** is a greedy linear arrangement — start from the most
  communicating task, repeatedly append the unplaced task with the largest
  communication volume to the already-ordered suffix (an addressable
  max-heap makes this O(|Et| log n));
* the **processor order** is a locality-preserving walk — a boustrophedon
  ("snake") sweep through grid coordinates for meshes/tori (consecutive
  processors are always one hop apart), and a BFS order from node 0 for
  anything else.

Simple, fast, and a genuinely decent baseline on stencil-like patterns.
"""

from __future__ import annotations

import numpy as np

from repro.mapping.base import Mapper, Mapping
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.topology.grid import GridTopology
from repro.utils.priority_queue import AddressableMaxHeap

__all__ = ["LinearOrderingMapper", "snake_order"]


def snake_order(topology: GridTopology) -> np.ndarray:
    """Boustrophedon processor order: consecutive entries are adjacent.

    Sweeps the last axis back and forth, reversing direction whenever any
    higher axis increments — the n-dimensional generalization of the
    serpentine raster.
    """
    shape = topology.shape
    coords = topology.coords_array().copy()
    # Sort key: for each axis k, flip the coordinate whenever the parity of
    # the prefix (axes < k) is odd.
    key = coords.astype(np.int64).copy()
    for axis in range(1, len(shape)):
        prefix_parity = key[:, :axis].sum(axis=1) % 2
        flip = prefix_parity == 1
        key[flip, axis] = shape[axis] - 1 - key[flip, axis]
    order = np.lexsort(tuple(key[:, axis] for axis in reversed(range(len(shape)))))
    return order.astype(np.int64)


class LinearOrderingMapper(Mapper):
    """Greedy linear arrangement of tasks onto a snake walk of processors."""

    strategy_name = "LinearOrderLB"

    def map(self, graph: TaskGraph, topology: Topology) -> Mapping:
        n = self._check_sizes(graph, topology)
        task_order = self._task_order(graph)
        proc_order = self._proc_order(topology)
        assignment = np.empty(n, dtype=np.int64)
        assignment[task_order] = proc_order
        return Mapping(graph, topology, assignment)

    # ------------------------------------------------------------ task order
    @staticmethod
    def _task_order(graph: TaskGraph) -> np.ndarray:
        n = graph.num_tasks
        indptr, indices, weights = graph.csr_arrays()
        volumes = graph.comm_volumes()
        if graph.num_edges:
            min_w = float(graph.edge_arrays()[2].min())
            eps = 0.5 * min_w / (1.0 + float(volumes.max()))
        else:
            eps = 0.0
        heap = AddressableMaxHeap((t, eps * volumes[t]) for t in range(n))
        order = np.empty(n, dtype=np.int64)
        placed = np.zeros(n, dtype=bool)
        for i in range(n):
            t, _ = heap.pop()
            t = int(t)
            order[i] = t
            placed[t] = True
            lo, hi = indptr[t], indptr[t + 1]
            for j, c in zip(indices[lo:hi], weights[lo:hi]):
                j = int(j)
                if not placed[j]:
                    heap.update(j, heap.key(j) + float(c))
        return order

    # ------------------------------------------------------------ proc order
    @staticmethod
    def _proc_order(topology: Topology) -> np.ndarray:
        if isinstance(topology, GridTopology):
            return snake_order(topology)
        # Generic machines: BFS order from node 0 (locality-ish).
        from collections import deque

        seen = np.zeros(topology.num_nodes, dtype=bool)
        order: list[int] = []
        for start in range(topology.num_nodes):
            if seen[start]:
                continue
            queue: deque[int] = deque([start])
            seen[start] = True
            while queue:
                v = queue.popleft()
                order.append(v)
                for nbr in topology.neighbors(v):
                    if not seen[nbr]:
                        seen[nbr] = True
                        queue.append(nbr)
        return np.asarray(order, dtype=np.int64)
