"""HierarchicalMapper — multilevel coarsen → map → uncoarsen mapping.

Every direct mapper here works on dense per-(graph, topology) tables, which
caps it at a few thousand processors. The multilevel scheme (Schulz & Woydt;
Predari et al.) lifts that cap by shrinking *both* sides of the problem
until the dense mappers fit, then walking back up:

1. **Task coarsening** — heavy-edge matching + contraction
   (:mod:`repro.partition.coarsening`) until the task count fits the
   machine's (healthy) capacity.
2. **Joint coarsening** — while the machine is still larger than ``stop``,
   halve it with :func:`~repro.topology.aggregate.coarsen_machine` (grid
   machines halve their largest extent; groups stay geometric blocks) and
   contract the task graph in lockstep so tasks keep fitting.
3. **Coarse mapping** — any inner mapper spec (default TopoLB) places the
   coarsest graph on the coarsest machine.
4. **Uncoarsening** — level by level, each coarse task's children spread
   injectively over their group's allowed processors (spill repairs to the
   nearest free processor), then a bounded
   :class:`~repro.mapping.refine.RefineTopoLB` pass polishes the fine
   level. Per-level cheap-tier validation guards every prolongation.
5. **Expansion** — the task-only coarsening maps compose back to the
   original tasks (many-to-one, like the two-phase pipeline).

The final mapping is produced entirely by kernel-bit-identical components,
so it is itself bit-identical across the ``vectorized``/``reference``
kernels — the full-tier kernel-differential oracle applies unchanged.
"""

from __future__ import annotations

import inspect

import numpy as np

from repro import obs
from repro.exceptions import MappingError
from repro.mapping.base import Mapper, Mapping, resolve_allowed
from repro.mapping.context import MappingContext, context_for
from repro.mapping.metrics import _MATRIX_LIMIT
from repro.mapping.refine import RefineTopoLB
from repro.partition.coarsening import coarsen_toward
from repro.taskgraph.graph import TaskGraph
from repro.topology.aggregate import coarsen_machine
from repro.topology.base import Topology
from repro.topology.grid import GridTopology

__all__ = ["HierarchicalMapper"]


class _Level:
    """One joint coarsening level, recorded fine-side."""

    __slots__ = ("graph", "topology", "allowed", "fine2coarse", "groups")

    def __init__(self, graph, topology, allowed, fine2coarse, groups):
        self.graph = graph
        self.topology = topology
        self.allowed = allowed
        self.fine2coarse = fine2coarse  # task map to the coarser level (or None)
        self.groups = groups  # processor map to the coarser machine


class HierarchicalMapper(Mapper):
    """Multilevel hierarchical mapper (see module docstring).

    Parameters
    ----------
    inner:
        Mapper for the coarsest level; defaults to second-order TopoLB.
        Must accept an ``allowed`` mask whenever the run is masked or
        non-bijective at the coarsest level (TopoLB and friends do).
    levels:
        ``"auto"`` (coarsen the machine until ``stop``) or a positive int
        capping the number of machine-coarsening levels.
    refine_window:
        RefineTopoLB sweeps after each uncoarsening step; 0 disables
        refinement. Refinement is skipped on levels whose machine exceeds
        the dense-table limit (it needs the full distance matrix).
    stop:
        Machine size at which joint coarsening stops — the size the inner
        mapper actually runs at.
    aggregate:
        Coarse-machine distance aggregation, ``"representative"`` (exact,
        scalable) or ``"mean"`` (dense-table bound).
    seed:
        Drives the matching visit order and the refiner sweep order.
    kernel:
        Kernel override for the per-level refiners (``None`` = process
        default, which is what the engine's kernel-differential oracle
        toggles).
    validate_levels:
        Run cheap-tier validation on every uncoarsened level (bounds,
        injectivity, mask, additivity, metrics consistency). Cheap relative
        to the mapping work; on by default.
    """

    strategy_name = "Multilevel"

    def __init__(
        self,
        inner: Mapper | None = None,
        levels: int | str = "auto",
        refine_window: int = 2,
        stop: int = 1024,
        aggregate: str = "representative",
        seed: int = 0,
        kernel: str | None = None,
        validate_levels: bool = True,
    ):
        if inner is None:
            from repro.mapping.topolb import TopoLB

            inner = TopoLB()
        if levels != "auto":
            try:
                levels = int(levels)
            except (TypeError, ValueError):
                raise MappingError(
                    f"levels must be 'auto' or a positive int, got {levels!r}"
                ) from None
            if levels < 1:
                raise MappingError(f"levels must be 'auto' or >= 1, got {levels}")
        if refine_window < 0:
            raise MappingError(f"refine_window must be >= 0, got {refine_window}")
        if stop < 1:
            raise MappingError(f"stop must be >= 1, got {stop}")
        self._inner = inner
        self._levels = levels
        self._refine_window = int(refine_window)
        self._stop = int(stop)
        self._aggregate = aggregate
        self._seed = int(seed)
        self._kernel = kernel
        self._validate_levels = bool(validate_levels)
        self._last_groups: np.ndarray | None = None
        self._last_group_mapping: Mapping | None = None
        #: per-level (num_tasks, num_procs, allowed, assignment) snapshots of
        #: the most recent uncoarsening, coarsest first — the property tests
        #: assert the level invariants on these.
        self.last_level_assignments: list[tuple[int, int, np.ndarray | None, np.ndarray]] = []

    # ------------------------------------------------------------- accessors
    @property
    def last_groups(self) -> np.ndarray | None:
        """Original-task → group map of the last run (for diagnostics)."""
        return self._last_groups

    @property
    def last_group_mapping(self) -> Mapping | None:
        """The injective group-level mapping on the full machine."""
        return self._last_group_mapping

    # ------------------------------------------------------------------- map
    def map(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None = None,
        *,
        ctx: MappingContext | None = None,
    ) -> Mapping:
        allowed = resolve_allowed(topology, allowed)
        capacity = topology.num_nodes if allowed is None else int(allowed.sum())
        if graph.num_tasks < 1:
            raise MappingError("cannot map an empty task graph")

        # Phase 1: task-only coarsening down to machine capacity.
        expand_maps: list[np.ndarray] = []
        g = graph
        with obs.timer("multilevel.coarsen_tasks"):
            while g.num_tasks > capacity:
                g, fine2coarse = coarsen_toward(
                    g, capacity, seed=self._seed + len(expand_maps)
                )
                expand_maps.append(fine2coarse)
        group_graph = g  # the graph that will live injectively on `topology`

        # Phase 2: joint machine + task coarsening.
        joint: list[_Level] = []
        topo: Topology = topology
        mask = allowed
        shape = topology.shape if isinstance(topology, GridTopology) else None
        with obs.timer("multilevel.coarsen_machine"):
            while self._keep_coarsening(topo, len(joint)):
                ctopo, groups, cmask, shape = coarsen_machine(
                    topo, mask, shape=shape, aggregate=self._aggregate
                )
                cap = ctopo.num_nodes if cmask is None else int(cmask.sum())
                if g.num_tasks > cap:
                    g2, fine2coarse = coarsen_toward(
                        g, cap, seed=self._seed + 101 + len(joint)
                    )
                    if g2.num_tasks > cap:
                        break  # machine shrinks faster than the graph can
                else:
                    g2, fine2coarse = g, None
                joint.append(_Level(g, topo, mask, fine2coarse, groups))
                g, topo, mask = g2, ctopo, cmask

        # Phase 3: map the coarsest level with the inner mapper.
        with obs.timer("multilevel.coarse_map"):
            assignment = self._map_coarsest(g, topo, mask)

        # Phase 4: uncoarsen, refining and validating each level.
        self.last_level_assignments = [
            (g.num_tasks, topo.num_nodes, mask, assignment.copy())
        ]
        self._check_level(g, topo, mask, assignment, level=len(joint))
        with obs.timer("multilevel.uncoarsen"):
            for depth, level in enumerate(reversed(joint)):
                assignment = self._prolong(level, assignment)
                assignment = self._refine_level(level, assignment, depth)
                self.last_level_assignments.append(
                    (
                        level.graph.num_tasks,
                        level.topology.num_nodes,
                        level.allowed,
                        assignment.copy(),
                    )
                )
                self._check_level(
                    level.graph, level.topology, level.allowed, assignment,
                    level=len(joint) - 1 - depth,
                )

        # Phase 5: expand the task-only coarsening back to the original tasks.
        self._last_group_mapping = Mapping(group_graph, topology, assignment)
        comp = np.arange(graph.num_tasks, dtype=np.int64)
        for fine2coarse in expand_maps:
            comp = fine2coarse[comp]  # original task -> group in group_graph
        self._last_groups = comp
        return Mapping(graph, topology, assignment[comp])

    # -------------------------------------------------------------- internals
    def _keep_coarsening(self, topo: Topology, depth: int) -> bool:
        if topo.num_nodes <= max(self._stop, 1):
            return False
        if self._levels != "auto" and depth >= self._levels:
            return False
        return topo.num_nodes > 1

    def _map_coarsest(
        self, g: TaskGraph, topo: Topology, mask: np.ndarray | None
    ) -> np.ndarray:
        use_mask = mask is not None or g.num_tasks < topo.num_nodes
        ictx = context_for(g, topo)
        kwargs = {}
        if "ctx" in inspect.signature(self._inner.map).parameters:
            kwargs["ctx"] = ictx
        if use_mask:
            if "allowed" not in inspect.signature(self._inner.map).parameters:
                raise MappingError(
                    f"{type(self._inner).__name__} does not support an "
                    "allowed-processor mask; use TopoLB/TopoCentLB/"
                    "RefineTopoLB as the multilevel inner mapper here"
                )
            arg = mask if mask is not None else np.ones(topo.num_nodes, dtype=bool)
            mapping = self._inner.map(g, topo, allowed=arg, **kwargs)
        else:
            mapping = self._inner.map(g, topo, **kwargs)
        return np.asarray(mapping.assignment, dtype=np.int64).copy()

    def _prolong(self, level: _Level, coarse_assignment: np.ndarray) -> np.ndarray:
        """Place each coarse task's children inside its group's processors.

        Children (ascending id) take the group's allowed members (ascending
        id) one-to-one; any spill goes to the nearest free allowed processor
        (ties to the smallest id), anchored at the group's first member.
        Feasibility (`n_fine <= fine capacity`) is guaranteed by the lockstep
        coarsening loop, so the repair queue always drains.
        """
        fine_graph, fine_topo = level.graph, level.topology
        n = fine_graph.num_tasks
        p = fine_topo.num_nodes
        allowed = level.allowed
        out = np.full(n, -1, dtype=np.int64)

        # group id -> ascending member processors (allowed only, if masked)
        groups = level.groups
        order = np.argsort(groups, kind="stable")
        counts = np.bincount(groups, minlength=int(groups.max()) + 1)
        members = np.split(order, np.cumsum(counts)[:-1])

        # coarse task -> ascending children tasks
        if level.fine2coarse is None:
            children = [np.array([t]) for t in range(n)]
        else:
            f2c = level.fine2coarse
            corder = np.argsort(f2c, kind="stable")
            ccounts = np.bincount(f2c, minlength=int(f2c.max()) + 1)
            children = np.split(corder, np.cumsum(ccounts)[:-1])

        used = np.zeros(p, dtype=bool)
        spill: list[tuple[int, int]] = []  # (fine task, anchor processor)
        for c, proc in enumerate(coarse_assignment.tolist()):
            kids = children[c]
            slots = members[proc]
            if allowed is not None:
                slots = slots[allowed[slots]]
            take = min(len(kids), len(slots))
            out[kids[:take]] = slots[:take]
            used[slots[:take]] = True
            anchor = int(members[proc][0])
            for t in kids[take:].tolist():
                spill.append((int(t), anchor))

        if spill:
            free = ~used
            if allowed is not None:
                free &= allowed
            for t, anchor in spill:
                candidates = np.flatnonzero(free)
                if len(candidates) == 0:
                    raise MappingError(
                        "multilevel prolongation ran out of processors "
                        "(internal feasibility invariant violated)"
                    )
                row = np.asarray(fine_topo.distance_row(anchor))
                pick = int(candidates[int(np.argmin(row[candidates]))])
                out[t] = pick
                free[pick] = False
        return out

    def _refine_level(
        self, level: _Level, assignment: np.ndarray, depth: int
    ) -> np.ndarray:
        if self._refine_window == 0:
            return assignment
        fine_topo = level.topology
        if fine_topo.num_nodes > _MATRIX_LIMIT:
            # RefineTopoLB materializes the p x p distance matrix and an
            # n x p cost table; above the dense limit prolongation order is
            # all the refinement this level gets.
            return assignment
        graph = level.graph
        fctx = context_for(graph, fine_topo)
        mapping = Mapping(graph, fine_topo, assignment)
        mask = level.allowed
        if mask is None and graph.num_tasks < fine_topo.num_nodes:
            mask = np.ones(fine_topo.num_nodes, dtype=bool)
        refiner = RefineTopoLB(
            max_sweeps=self._refine_window,
            seed=self._seed + 201 + depth,
            kernel=self._kernel,
        )
        refined = refiner.refine(mapping, allowed=mask, ctx=fctx)
        return np.asarray(refined.assignment, dtype=np.int64).copy()

    def _check_level(
        self,
        graph: TaskGraph,
        topology: Topology,
        allowed: np.ndarray | None,
        assignment: np.ndarray,
        level: int,
    ) -> None:
        """Cheap-tier validation of one level's (injective) assignment."""
        if not self._validate_levels:
            return
        from repro.validate.core import validate_mapping

        validate_mapping(
            graph, topology, assignment,
            level="cheap", allowed=allowed,
            topology_spec=f"multilevel level {level}: {topology.name}",
        )
