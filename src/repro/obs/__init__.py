"""repro.obs — observability for the mapping and simulation hot layers.

Counters, phase timers, event hooks, and bounded time series with a
zero-overhead disabled path, plus the ``repro-profile-v1`` JSON artifact
that captures one run's telemetry in a stable, schema-validated form.

Typical use::

    from repro import obs

    with obs.profiled() as prof:
        TopoLB().map(graph, topology)
    print(prof.counters["topolb.cycles"])

    profile = obs.build_profile(prof, command="my-experiment")
    obs.save_profile(profile, "BENCH_topolb.json")

Instrumented call sites fetch ``obs.active()`` once; when it is ``None``
(the default) they skip all accounting, so an un-profiled run pays nothing.
See ``docs/OBSERVABILITY.md`` for the counter/timer name registry and the
profile schema.
"""

from repro.obs.core import (
    Profiler,
    Series,
    active,
    count,
    disable,
    enable,
    event,
    profiled,
    timer,
)
from repro.obs.profile import (
    PROFILE_FORMAT,
    PROFILE_SCHEMA,
    build_profile,
    load_profile,
    save_profile,
    summarize_profile,
    validate_profile,
)

__all__ = [
    "Profiler",
    "Series",
    "active",
    "enable",
    "disable",
    "profiled",
    "count",
    "timer",
    "event",
    "PROFILE_FORMAT",
    "PROFILE_SCHEMA",
    "build_profile",
    "validate_profile",
    "save_profile",
    "load_profile",
    "summarize_profile",
]
