"""Lightweight counters, phase timers, and event hooks for the hot layers.

The contract every instrumented call site relies on:

* **Disabled is free.** ``active()`` returns ``None`` unless a profiler has
  been installed, so hot loops guard their accounting with a single
  ``if prof is not None`` branch and allocate nothing. The module-level
  convenience wrappers (:func:`count`, :func:`timer`, :func:`event`) degrade
  to a dict lookup plus, for :func:`timer`, a shared no-op context manager —
  no per-call objects are created on the disabled path.
* **Everything is JSON-able.** :meth:`Profiler.snapshot` returns plain
  dicts/lists/numbers, ready to drop into the ``repro-profile-v1`` artifact
  (see :mod:`repro.obs.profile`).
* **Memory is bounded.** Event logs are capped; time series decimate
  themselves (keep every 2nd sample, double the stride) when full, so a
  long netsim run cannot grow a profile without bound.

The profiler is deliberately not thread-safe: every consumer in this
repository is single-threaded, and a lock on the counter path would cost
more than the counters themselves.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any

__all__ = [
    "Profiler",
    "Series",
    "active",
    "enable",
    "disable",
    "profiled",
    "count",
    "timer",
    "event",
]


class _NullContext:
    """Shared no-op context manager handed out while profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _Timer:
    """Context manager accumulating wall time under one timer name."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._profiler.add_time(self._name, time.perf_counter() - self._start)
        return False


class Series:
    """Bounded ``(t, value)`` samples that halve their resolution when full.

    Once ``max_samples`` points are stored, every second point is dropped and
    the stride doubles: only every ``stride``-th :meth:`add` is recorded from
    then on. The result approximates the full timeline at progressively
    coarser resolution while never exceeding the cap.
    """

    __slots__ = ("samples", "stride", "max_samples", "_skip")

    def __init__(self, max_samples: int = 512):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.samples: list[tuple[float, float]] = []
        self.stride = 1
        self.max_samples = int(max_samples)
        self._skip = 0

    def add(self, t: float, value: float) -> None:
        if self._skip:
            self._skip -= 1
            return
        self.samples.append((float(t), float(value)))
        if len(self.samples) >= self.max_samples:
            del self.samples[1::2]
            self.stride *= 2
        self._skip = self.stride - 1


class Profiler:
    """Collects counters, timers, events, and time series for one run.

    Parameters
    ----------
    max_events:
        Cap on stored events; later events are counted (``dropped_events``)
        but not stored.
    max_series_samples:
        Per-series sample cap (see :class:`Series`).
    """

    def __init__(self, max_events: int = 1024, max_series_samples: int = 512):
        self.counters: dict[str, float] = {}
        self.timers: dict[str, list[float]] = {}  # name -> [total_seconds, count]
        self.events: list[dict[str, Any]] = []
        self.series: dict[str, Series] = {}
        self.dropped_events = 0
        self._max_events = int(max_events)
        self._max_series_samples = int(max_series_samples)

    # ------------------------------------------------------------- recording
    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def count_max(self, name: str, value: float) -> None:
        """Raise counter ``name`` to ``value`` if it is larger (a high-water mark)."""
        if value > self.counters.get(name, 0):
            self.counters[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under timer ``name``."""
        cell = self.timers.get(name)
        if cell is None:
            self.timers[name] = [seconds, 1]
        else:
            cell[0] += seconds
            cell[1] += 1

    def timer(self, name: str) -> _Timer:
        """Context manager timing a phase: ``with prof.timer("phase"): ...``."""
        return _Timer(self, name)

    def event(self, name: str, **fields: Any) -> None:
        """Record one structured event (bounded; overflow is counted)."""
        if len(self.events) >= self._max_events:
            self.dropped_events += 1
            return
        self.events.append({"name": name, **fields})

    def sample(self, name: str, t: float, value: float) -> None:
        """Append ``(t, value)`` to time series ``name`` (bounded)."""
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(self._max_series_samples)
        series.add(t, value)

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        Counters and timer totals/counts add up, events concatenate under
        the same bounded cap (overflow is counted, as for :meth:`event`),
        and series samples are re-added through the normal decimation path.
        This is how the parallel experiment runner folds per-worker
        telemetry into the single artifact it writes.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, cell in snapshot.get("timers", {}).items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = [float(cell["total_s"]), int(cell["count"])]
            else:
                mine[0] += float(cell["total_s"])
                mine[1] += int(cell["count"])
        for ev in snapshot.get("events", []):
            if len(self.events) >= self._max_events:
                self.dropped_events += 1
            else:
                self.events.append(dict(ev))
        self.dropped_events += int(snapshot.get("dropped_events", 0))
        for name, sdata in snapshot.get("series", {}).items():
            for t, value in sdata.get("samples", []):
                self.sample(name, t, value)

    # ------------------------------------------------------------- reporting
    def snapshot(self) -> dict[str, Any]:
        """Plain-JSON view of everything recorded so far."""
        snap: dict[str, Any] = {
            "counters": dict(self.counters),
            "timers": {
                name: {"total_s": total, "count": int(n)}
                for name, (total, n) in self.timers.items()
            },
        }
        if self.events or self.dropped_events:
            snap["events"] = [dict(e) for e in self.events]
            if self.dropped_events:
                snap["dropped_events"] = self.dropped_events
        if self.series:
            snap["series"] = {
                name: {
                    "stride": s.stride,
                    "samples": [[t, v] for t, v in s.samples],
                }
                for name, s in self.series.items()
            }
        return snap

    def reset(self) -> None:
        """Drop everything recorded so far."""
        self.counters.clear()
        self.timers.clear()
        self.events.clear()
        self.series.clear()
        self.dropped_events = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Profiler counters={len(self.counters)} timers={len(self.timers)} "
            f"events={len(self.events)} series={len(self.series)}>"
        )


#: The installed profiler, or None (profiling disabled — the default).
_active: Profiler | None = None


def active() -> Profiler | None:
    """The currently installed profiler, or ``None`` when disabled.

    Hot call sites fetch this once and guard with ``if prof is not None``.
    """
    return _active


def enable(profiler: Profiler | None = None) -> Profiler:
    """Install ``profiler`` (or a fresh one) as the active profiler."""
    global _active
    _active = profiler if profiler is not None else Profiler()
    return _active


def disable() -> Profiler | None:
    """Uninstall the active profiler; returns it (with its data) or ``None``."""
    global _active
    previous = _active
    _active = None
    return previous


@contextmanager
def profiled(profiler: Profiler | None = None):
    """Enable profiling for a block, restoring the previous state after::

        with obs.profiled() as prof:
            TopoLB().map(graph, topo)
        print(prof.counters)
    """
    global _active
    previous = _active
    prof = enable(profiler)
    try:
        yield prof
    finally:
        _active = previous


def count(name: str, n: float = 1) -> None:
    """Module-level :meth:`Profiler.count`; no-op while disabled."""
    prof = _active
    if prof is not None:
        prof.count(name, n)


def timer(name: str):
    """Module-level :meth:`Profiler.timer`; a shared no-op context while disabled."""
    prof = _active
    if prof is None:
        return _NULL_CONTEXT
    return prof.timer(name)


def event(name: str, **fields: Any) -> None:
    """Module-level :meth:`Profiler.event`; no-op while disabled."""
    prof = _active
    if prof is not None:
        prof.event(name, **fields)
