"""The ``repro-profile-v1`` artifact: schema, validation, I/O, reporting.

A profile is one JSON document capturing everything a run's
:class:`~repro.obs.core.Profiler` observed — per-phase wall times, mapper
repair counters, netsim per-link load summaries — in a stable schema so the
``BENCH_*.json`` trajectory can diff baselines across PRs.

``PROFILE_SCHEMA`` is a standard JSON-Schema (draft-07) document; it is
enforced here by a built-in validator covering the subset the schema uses
(no external dependency), and any installed ``jsonschema`` package will
accept the same documents (the test suite cross-checks this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import ProfileError
from repro.obs.core import Profiler

__all__ = [
    "PROFILE_FORMAT",
    "PROFILE_SCHEMA",
    "build_profile",
    "validate_profile",
    "save_profile",
    "load_profile",
    "summarize_profile",
]

PROFILE_FORMAT = "repro-profile-v1"

#: JSON-Schema (draft-07) for the profile artifact.
PROFILE_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro profile artifact (repro-profile-v1)",
    "type": "object",
    "required": ["format", "command", "counters", "timers"],
    "additionalProperties": False,
    "properties": {
        "format": {"const": PROFILE_FORMAT},
        "command": {"type": "string"},
        "counters": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "timers": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["total_s", "count"],
                "additionalProperties": False,
                "properties": {
                    "total_s": {"type": "number", "minimum": 0},
                    "count": {"type": "integer", "minimum": 0},
                },
            },
        },
        "events": {
            "type": "array",
            "items": {"type": "object", "required": ["name"]},
        },
        "dropped_events": {"type": "integer", "minimum": 0},
        "series": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["stride", "samples"],
                "additionalProperties": False,
                "properties": {
                    "stride": {"type": "integer", "minimum": 1},
                    "samples": {
                        "type": "array",
                        "items": {
                            "type": "array",
                            "minItems": 2,
                            "maxItems": 2,
                            "items": {"type": "number"},
                        },
                    },
                },
            },
        },
        "netsim": {
            "type": "object",
            "required": ["links_used", "total_bytes", "max_link_bytes", "top_links"],
            "additionalProperties": False,
            "properties": {
                "mode": {"type": "string", "enum": ["des", "flow"]},
                "links_used": {"type": "integer", "minimum": 0},
                "total_bytes": {"type": "number", "minimum": 0},
                "max_link_bytes": {"type": "number", "minimum": 0},
                "mean_utilization": {"type": "number", "minimum": 0},
                "max_utilization": {"type": "number", "minimum": 0},
                "max_queue_depth": {"type": "integer", "minimum": 0},
                "sim_time_us": {"type": "number", "minimum": 0},
                "makespan_lower_bound_us": {"type": "number", "minimum": 0},
                "top_links": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        # "busy_us" on a DES summary, "messages" on a flow
                        # one; both report "link" and "bytes".
                        "required": ["link", "bytes"],
                        "additionalProperties": False,
                        "properties": {
                            "link": {"type": "string"},
                            "bytes": {"type": "number", "minimum": 0},
                            "busy_us": {"type": "number", "minimum": 0},
                            "messages": {"type": "integer", "minimum": 0},
                            "max_queue_depth": {"type": "integer", "minimum": 0},
                        },
                    },
                },
                # Tail-latency report of a finite-buffer (or any DES) run,
                # as produced by repro.netsim.stats.tail_summary.
                "tail": {
                    "type": "object",
                    "required": ["delivered", "latency"],
                    "additionalProperties": False,
                    "properties": {
                        "delivered": {"type": "integer", "minimum": 0},
                        "dropped": {"type": "integer", "minimum": 0},
                        "retransmits": {"type": "integer", "minimum": 0},
                        "buffer_drops": {"type": "integer", "minimum": 0},
                        "ecn_marks": {"type": "integer", "minimum": 0},
                        "ecn_delivered": {"type": "integer", "minimum": 0},
                        "latency": {
                            "type": "object",
                            "required": ["p50", "p99", "p999"],
                            "additionalProperties": False,
                            "properties": {
                                "p50": {"type": "number", "minimum": 0},
                                "p99": {"type": "number", "minimum": 0},
                                "p999": {"type": "number", "minimum": 0},
                                "mean": {"type": "number", "minimum": 0},
                                "max": {"type": "number", "minimum": 0},
                            },
                        },
                        "classes": {
                            "type": "array",
                            "items": {
                                "type": "object",
                                "required": ["class", "count"],
                                "additionalProperties": False,
                                "properties": {
                                    "class": {"type": "string"},
                                    "count": {"type": "integer", "minimum": 0},
                                    "p50": {"type": "number", "minimum": 0},
                                    "p99": {"type": "number", "minimum": 0},
                                    "p999": {"type": "number", "minimum": 0},
                                    "max": {"type": "number", "minimum": 0},
                                },
                            },
                        },
                        "iterations": {
                            "type": "object",
                            "required": ["count"],
                            "additionalProperties": False,
                            "properties": {
                                "count": {"type": "integer", "minimum": 0},
                                "p50": {"type": "number", "minimum": 0},
                                "p99": {"type": "number", "minimum": 0},
                                "max": {"type": "number", "minimum": 0},
                                "mean": {"type": "number", "minimum": 0},
                            },
                        },
                    },
                },
            },
        },
        "context": {"type": "object"},
    },
}


# --------------------------------------------------------------------- build
def build_profile(
    profiler: Profiler,
    command: str,
    context: dict[str, Any] | None = None,
    netsim: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble (and validate) a profile document from a profiler's data.

    ``context`` is free-form run metadata (strategy, topology spec, seed...);
    ``netsim`` is a per-link load summary as produced by
    :func:`repro.netsim.stats.link_summary`.
    """
    profile: dict[str, Any] = {
        "format": PROFILE_FORMAT,
        "command": command,
        **profiler.snapshot(),
    }
    if netsim is not None:
        profile["netsim"] = netsim
    if context is not None:
        profile["context"] = context
    validate_profile(profile)
    return profile


# ------------------------------------------------------------------ validate
def validate_profile(profile: Any) -> None:
    """Check ``profile`` against :data:`PROFILE_SCHEMA`; raise :class:`ProfileError`.

    Uses a built-in validator for the JSON-Schema subset the schema needs, so
    validation works with no third-party packages installed.
    """
    errors: list[str] = []
    _validate(profile, PROFILE_SCHEMA, "$", errors)
    if errors:
        raise ProfileError(
            "profile does not match repro-profile-v1: " + "; ".join(errors[:5])
        )


def _validate(value: Any, schema: dict[str, Any], path: str, errors: list[str]) -> None:
    """Recursive validator for the schema subset PROFILE_SCHEMA uses."""
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return

    stype = schema.get("type")
    if stype == "object":
        if not isinstance(value, dict):
            errors.append(f"{path}: expected object, got {type(value).__name__}")
            return
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                _validate(item, props[key], f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                _validate(item, extra, f"{path}.{key}", errors)
    elif stype == "array":
        if not isinstance(value, list):
            errors.append(f"{path}: expected array, got {type(value).__name__}")
            return
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: fewer than {schema['minItems']} items")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{path}: more than {schema['maxItems']} items")
        item_schema = schema.get("items")
        if item_schema:
            for i, item in enumerate(value):
                _validate(item, item_schema, f"{path}[{i}]", errors)
    elif stype == "number":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"{path}: expected number, got {type(value).__name__}")
        elif "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    elif stype == "integer":
        if isinstance(value, bool) or not isinstance(value, int):
            errors.append(f"{path}: expected integer, got {type(value).__name__}")
        elif "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    elif stype == "string":
        if not isinstance(value, str):
            errors.append(f"{path}: expected string, got {type(value).__name__}")


# ----------------------------------------------------------------------- I/O
def save_profile(profile: dict[str, Any], path: str | Path) -> None:
    """Validate and write ``profile`` as JSON."""
    validate_profile(profile)
    Path(path).write_text(json.dumps(profile, indent=1, sort_keys=True))


def load_profile(path: str | Path) -> dict[str, Any]:
    """Read and validate a profile JSON; raise :class:`ProfileError` on failure."""
    try:
        profile = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{path} is not valid JSON: {exc}") from exc
    validate_profile(profile)
    return profile


# -------------------------------------------------------------------- report
def summarize_profile(profile: dict[str, Any]) -> str:
    """Human-readable summary of a profile (the ``repro-map --stats`` report)."""
    validate_profile(profile)
    lines = [f"profile: {profile['command']}"]

    context = profile.get("context")
    if context:
        ctx = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
        lines.append(f"context: {ctx}")

    timers = profile.get("timers", {})
    if timers:
        lines.append("")
        lines.append("phase wall times:")
        width = max(len(name) for name in timers)
        by_total = sorted(timers.items(), key=lambda kv: -kv[1]["total_s"])
        for name, cell in by_total:
            lines.append(
                f"  {name.ljust(width)}  {cell['total_s'] * 1e3:10.3f} ms"
                f"  x{cell['count']}"
            )

    counters = profile.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            value = counters[name]
            shown = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name.ljust(width)}  {shown}")

    netsim = profile.get("netsim")
    if netsim:
        lines.append("")
        lines.append(
            f"netsim: {netsim['links_used']} links carried "
            f"{netsim['total_bytes']:.6g} bytes"
            + (
                f" over {netsim['sim_time_us']:.6g} us"
                if "sim_time_us" in netsim
                else ""
            )
            + (
                f", makespan >= {netsim['makespan_lower_bound_us']:.6g} us"
                if "makespan_lower_bound_us" in netsim
                else ""
            )
        )
        if "max_utilization" in netsim:
            lines.append(
                f"  utilization mean={netsim.get('mean_utilization', 0):.3f} "
                f"max={netsim['max_utilization']:.3f}"
            )
        if netsim["top_links"]:
            flow = netsim.get("mode") == "flow"
            lines.append("  hottest links (bytes / messages):" if flow
                         else "  hottest links (bytes / busy us):")
            for entry in netsim["top_links"]:
                tail = entry["messages"] if flow else entry["busy_us"]
                lines.append(
                    f"    {entry['link']:<16} {entry['bytes']:>12.6g}"
                    f"  {tail:>10.4g}"
                )
        tail_block = netsim.get("tail")
        if tail_block:
            lat = tail_block["latency"]
            lines.append(
                f"  tail: {tail_block['delivered']} delivered, latency "
                f"p50={lat['p50']:.6g} p99={lat['p99']:.6g} "
                f"p999={lat['p999']:.6g} us"
            )
            overload_bits = []
            for key in ("dropped", "retransmits", "buffer_drops",
                        "ecn_marks"):
                if tail_block.get(key):
                    overload_bits.append(f"{key}={tail_block[key]}")
            if overload_bits:
                lines.append("  overload: " + " ".join(overload_bits))
            for row in tail_block.get("classes", []):
                lines.append(
                    f"    {row['class']:<10} n={row['count']:<7} "
                    f"p50={row['p50']:.6g} p99={row['p99']:.6g} "
                    f"p999={row['p999']:.6g}"
                )
            its = tail_block.get("iterations")
            if its:
                lines.append(
                    f"  iteration tails: n={its['count']} "
                    f"p50={its['p50']:.6g} p99={its['p99']:.6g} "
                    f"max={its['max']:.6g} us"
                )

    events = profile.get("events", [])
    if events:
        by_name: dict[str, int] = {}
        for evt in events:
            by_name[evt["name"]] = by_name.get(evt["name"], 0) + 1
        lines.append("")
        lines.append("events: " + ", ".join(
            f"{name} x{n}" for name, n in sorted(by_name.items())
        ))
        dropped = profile.get("dropped_events", 0)
        if dropped:
            lines.append(f"  (+{dropped} dropped past the event cap)")

    series = profile.get("series", {})
    if series:
        lines.append("")
        shown = sorted(series.items())[:8]
        listing = ", ".join(
            f"{name} ({len(s['samples'])} samples, stride {s['stride']})"
            for name, s in shown
        )
        if len(series) > len(shown):
            listing += f", ... +{len(series) - len(shown)} more"
        lines.append(f"series ({len(series)}): {listing}")
    return "\n".join(lines)
