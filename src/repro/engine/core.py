"""MappingEngine — one request/result path for every mapping in the repo.

A :class:`MappingRequest` names the three inputs (task graph, topology,
mapper) either as live objects or as spec strings, plus the run knobs (seed,
kernel, allowed mask, profile flag). :meth:`MappingEngine.run` resolves the
specs through the single factories (:func:`graph_from_spec`,
:func:`repro.topology.factory.topology_from_spec`,
:func:`repro.engine.specs.mapper_from_spec`), builds the shared
:class:`~repro.mapping.context.MappingContext`, maps, and returns a
:class:`MappingResult` carrying the assignment, the canonical metrics block
(one distance gather for all metrics), reproducibility metadata, and — when
requested — a ``repro-profile-v1`` document.

:meth:`MappingEngine.run_many` batches requests over a process pool with
per-request retries (the same pool/retry discipline as
``repro.experiments.runner``); within each worker process, same-shape
topologies share distance tables through :mod:`repro.topology.cache`, so a
batch over one machine pays the O(p^2) table cost once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import SpecError, ValidationError
from repro.engine.specs import mapper_from_spec, parse_mapper_spec

__all__ = [
    "MappingRequest",
    "MappingResult",
    "MappingEngine",
    "graph_from_spec",
    "canonical_command",
]


# ---------------------------------------------------------------- graph specs
def _parse_graph_options(items: list[str], spec: str,
                         allowed: tuple[str, ...]) -> dict[str, float]:
    options: dict[str, float] = {}
    for item in items:
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in allowed:
            raise SpecError(
                f"bad graph option {item!r} in {spec!r}; expected key=value "
                f"with key in {allowed}"
            )
        try:
            options[key] = float(value)
        except ValueError as exc:
            raise SpecError(f"bad graph option value {item!r}") from exc
    return options


def graph_from_spec(spec: str):
    """Build a :class:`~repro.taskgraph.TaskGraph` from a spec string.

    Supported kinds::

        file:<path>                  task-graph JSON (repro-taskgraph-v1)
        lbdump:<path>                LB dump (repro-lbdump-v1)
        mesh2d:<R>x<C>[;bytes=F]     2D stencil pattern
        mesh3d:<X>x<Y>x<Z>[;bytes=F] 3D stencil pattern
        ring:<N>[;bytes=F]           ring pattern
        alltoall:<N>[;bytes=F]       complete graph
        random:<N>[;p=F][;seed=I]    Erdős–Rényi random graph
    """
    if not isinstance(spec, str) or ":" not in spec:
        raise SpecError(
            f"graph spec {spec!r} must look like 'kind:params' "
            "(e.g. mesh2d:8x8;bytes=1024 or file:app.json)"
        )
    kind, _, params = spec.partition(":")
    kind = kind.strip().lower()
    if kind == "file":
        from repro.taskgraph.io import load_taskgraph

        return load_taskgraph(Path(params))
    if kind == "lbdump":
        from repro.runtime.lbdb import LBDatabase

        return LBDatabase.load(Path(params)).to_taskgraph()

    head, *rest = params.split(";")
    if kind in ("mesh2d", "mesh3d"):
        from repro.taskgraph.patterns import mesh2d_pattern, mesh3d_pattern

        try:
            shape = tuple(int(part) for part in head.split("x"))
        except ValueError as exc:
            raise SpecError(f"bad graph shape {head!r}: {exc}") from exc
        options = _parse_graph_options(rest, spec, ("bytes",))
        bytes_ = options.get("bytes", 1.0)
        if kind == "mesh2d":
            if len(shape) != 2:
                raise SpecError(f"mesh2d needs RxC, got {head!r}")
            return mesh2d_pattern(*shape, message_bytes=bytes_)
        if len(shape) != 3:
            raise SpecError(f"mesh3d needs XxYxZ, got {head!r}")
        return mesh3d_pattern(*shape, message_bytes=bytes_)
    if kind in ("ring", "alltoall"):
        from repro.taskgraph.patterns import all_to_all_pattern, ring_pattern

        try:
            n = int(head)
        except ValueError as exc:
            raise SpecError(f"bad task count {head!r}") from exc
        options = _parse_graph_options(rest, spec, ("bytes",))
        maker = ring_pattern if kind == "ring" else all_to_all_pattern
        return maker(n, message_bytes=options.get("bytes", 1.0))
    if kind == "random":
        from repro.taskgraph.random_graphs import random_taskgraph

        try:
            n = int(head)
        except ValueError as exc:
            raise SpecError(f"bad task count {head!r}") from exc
        options = _parse_graph_options(rest, spec, ("p", "seed"))
        return random_taskgraph(
            n,
            edge_prob=options.get("p", 0.1),
            seed=int(options.get("seed", 0)),
        )
    raise SpecError(f"unknown graph kind {kind!r}")


def canonical_command(mapper_spec: str, topology_spec: str, seed: int | None,
                      kernel: str | None) -> str:
    """The fully reproducible ``repro-map`` command line for a run.

    Always includes the seed and kernel actually in effect — a recorded
    command replays the run exactly (the profile-reproducibility fix).
    """
    from repro.mapping.kernels import get_default_kernel

    spec = parse_mapper_spec(mapper_spec).canonical
    kernel = kernel if kernel is not None else get_default_kernel()
    return (
        f"repro-map --strategy '{spec}' --topology {topology_spec} "
        f"--seed {0 if seed is None else seed} --kernel {kernel}"
    )


# ------------------------------------------------------------ request/result
@dataclass
class MappingRequest:
    """Everything needed to reproduce one mapping run.

    ``graph``/``topology``/``mapper`` accept live objects or spec strings;
    spec strings keep the request picklable for :meth:`MappingEngine.run_many`
    and replayable from recorded metadata.
    """

    graph: object  # TaskGraph | str
    topology: object  # Topology | str
    mapper: object = "TopoLB"  # Mapper | str (spec or Charm++ alias)
    seed: int | None = None
    kernel: str | None = None
    allowed: np.ndarray | None = None
    profile: bool = False
    #: Also evaluate the flow-level contention estimator
    #: (:func:`repro.netsim.flow.flow_evaluate`) on the produced mapping and
    #: merge its scalars into ``metrics`` under ``flow_*`` keys. Cheap even
    #: on machines where the DES is infeasible.
    flow_metrics: bool = False
    #: Validation tier enforced on the produced mapping: "off" (default),
    #: "cheap" (structural invariants + metrics consistency) or "full"
    #: (+ differential kernel/spec oracles and metamorphic properties).
    #: Violations raise :class:`~repro.exceptions.ValidationError` with a
    #: replayable ``repro-validate`` command; see docs/VALIDATION.md.
    validate: str = "off"
    #: Optional DES replay of the produced mapping: a dict of knobs merged
    #: into ``metrics`` under ``des_*`` keys (makespan, p50/p99/p999 tails,
    #: drop/retransmit/ECN counters). Recognized keys: ``iterations``
    #: (default 2), ``buffer_bytes``, ``overload_policy``, and the
    #: passthrough simulator knobs ``bandwidth``, ``alpha``, ``max_retries``,
    #: ``retry_delay``, ``retry_backoff``, ``retry_jitter``, ``seed``,
    #: ``stall_window``. Unknown keys raise
    #: :class:`~repro.exceptions.SpecError`. ``None`` (default) skips the
    #: replay entirely.
    netsim: dict | None = None


@dataclass
class MappingResult:
    """Outcome of one engine run.

    ``metrics`` is the canonical block of
    :func:`repro.mapping.metrics.metrics_block` plus, for pipeline mappers,
    the paper's group-level hop-byte metrics. ``metadata`` round-trips: its
    ``spec``/``topology``/``seed``/``kernel`` entries rebuild an equivalent
    :class:`MappingRequest`, and ``command`` is the exact CLI line.
    """

    assignment: np.ndarray
    metrics: dict[str, float]
    metadata: dict[str, object]
    profile: dict | None = None
    mapping: object | None = field(default=None, repr=False)  # Mapping | None


_NETSIM_KEYS = frozenset({
    "iterations", "buffer_bytes", "overload_policy", "bandwidth", "alpha",
    "max_retries", "retry_delay", "retry_backoff", "retry_jitter", "seed",
    "stall_window",
})


def _netsim_metrics(mapping, knobs: dict) -> dict[str, float]:
    """DES-replay a mapping per ``MappingRequest.netsim``; return des_* keys.

    The replay mirrors the CLI's buffered evaluation: a Jacobi-style
    closed-loop app, persistent retransmission when buffered (a final drop
    would wedge the closed loop), and the tail summary flattened into
    scalar metrics a golden triple can pin.
    """
    from repro.netsim.appsim import IterativeApplication
    from repro.netsim.simulator import NetworkSimulator
    from repro.netsim.stats import tail_summary

    unknown = set(knobs) - _NETSIM_KEYS
    if unknown:
        raise SpecError(
            f"unknown MappingRequest.netsim key(s) {sorted(unknown)}; "
            f"recognized: {sorted(_NETSIM_KEYS)}"
        )
    iterations = int(knobs.get("iterations", 2))
    sim_kwargs = {
        k: knobs[k]
        for k in ("buffer_bytes", "overload_policy", "bandwidth", "alpha",
                  "max_retries", "retry_delay", "retry_backoff",
                  "retry_jitter", "seed", "stall_window")
        if k in knobs
    }
    if knobs.get("buffer_bytes") is not None:
        sim_kwargs.setdefault("max_retries", 64)
        sim_kwargs["unroutable_policy"] = "drop"
    sim = NetworkSimulator(mapping.topology, **sim_kwargs)
    app = IterativeApplication(mapping, sim, iterations=iterations)
    result = app.run()
    tail = tail_summary(sim, iteration_times=result.iteration_times)
    return {
        "des_makespan_us": result.total_time,
        "des_p50_us": tail["latency"]["p50"],
        "des_p99_us": tail["latency"]["p99"],
        "des_p999_us": tail["latency"]["p999"],
        "des_delivered": float(tail["delivered"]),
        "des_dropped": float(tail["dropped"]),
        "des_retransmits": float(tail["retransmits"]),
        "des_buffer_drops": float(tail["buffer_drops"]),
        "des_ecn_marks": float(tail["ecn_marks"]),
    }


# --------------------------------------------------------------------- engine
class MappingEngine:
    """The one resolution-and-execution path for mappings.

    Stateless apart from the process-wide caches it warms (topology tables,
    mapping contexts); constructing it is free, so layers just instantiate
    one where needed.
    """

    def run(self, request: MappingRequest) -> MappingResult:
        from repro import obs
        from repro.mapping.context import context_for
        from repro.mapping.kernels import get_default_kernel, set_default_kernel
        from repro.mapping.metrics import metrics_block
        from repro.taskgraph.graph import TaskGraph
        from repro.topology.factory import topology_from_spec

        if request.validate not in ("off", "cheap", "full"):
            raise SpecError(
                "MappingRequest.validate must be one of ('off', 'cheap', "
                f"'full'), got {request.validate!r}"
            )
        graph = (
            request.graph
            if isinstance(request.graph, TaskGraph)
            else graph_from_spec(request.graph)
        )
        topology = (
            topology_from_spec(request.topology)
            if isinstance(request.topology, str)
            else request.topology
        )
        topology_spec = (
            request.topology
            if isinstance(request.topology, str)
            else getattr(topology, "name", type(topology).__name__)
        )

        # The kernel knob binds at mapper *construction* (resolve_kernel),
        # so spec-built mappers are constructed inside the override window.
        prev_kernel = (
            set_default_kernel(request.kernel)
            if request.kernel is not None
            else None
        )
        own_prof = None
        try:
            if isinstance(request.mapper, str):
                parsed = parse_mapper_spec(request.mapper)
                mapper = parsed.build(request.seed)
                spec = parsed.canonical
                strategy = request.mapper
            else:
                mapper = request.mapper
                spec = None
                strategy = type(mapper).__name__

            ctx = context_for(graph, topology)
            if request.profile and obs.active() is None:
                own_prof = obs.enable()
            with obs.timer("engine.map"):
                if request.allowed is not None:
                    mapping = mapper.map(graph, topology, allowed=request.allowed)
                else:
                    mapping = mapper.map(graph, topology)

            metrics = metrics_block(graph, topology, mapping.assignment, ctx=ctx)
            # The paper evaluates hops-per-byte on the coalesced graph too —
            # intra-group bytes never enter the network.
            group_mapping = getattr(mapper, "last_group_mapping", None)
            if group_mapping is not None:
                metrics["group_hops_per_byte"] = group_mapping.hops_per_byte
                metrics["group_hop_bytes"] = group_mapping.hop_bytes

            if request.flow_metrics:
                from repro.netsim.flow import flow_evaluate

                with obs.timer("engine.flow"):
                    flow = flow_evaluate(mapping)
                metrics["flow_max_link_bytes"] = flow.max_link_bytes
                metrics["flow_total_bytes"] = flow.total_bytes
                metrics["flow_links_used"] = float(flow.links_used)
                metrics["flow_makespan_lower_bound_us"] = (
                    flow.makespan_lower_bound
                )

            if request.netsim is not None:
                with obs.timer("engine.netsim"):
                    metrics.update(_netsim_metrics(mapping, request.netsim))

            if request.validate != "off":
                from repro.validate import validate_mapping

                # Still inside the kernel-override window, so the oracles'
                # mapper rebuilds resolve the same default kernel this run
                # used.
                with obs.timer("engine.validate"):
                    validate_mapping(
                        graph, topology, mapping.assignment,
                        level=request.validate,
                        ctx=ctx,
                        allowed=request.allowed,
                        mapper_spec=spec,
                        graph_spec=request.graph
                        if isinstance(request.graph, str) else None,
                        topology_spec=request.topology
                        if isinstance(request.topology, str) else None,
                        seed=request.seed,
                        kernel=request.kernel or get_default_kernel(),
                        metrics=metrics,
                    )

            metadata: dict[str, object] = {
                "strategy": strategy,
                "spec": spec,
                "topology": topology_spec,
                "seed": request.seed,
                "kernel": request.kernel or get_default_kernel(),
                "num_objects": graph.num_tasks,
                "num_processors": topology.num_nodes,
            }
            if spec is not None and isinstance(request.topology, str):
                metadata["command"] = canonical_command(
                    spec, topology_spec, request.seed, request.kernel
                )

            profile_doc = None
            if own_prof is not None:
                profile_doc = obs.build_profile(
                    own_prof,
                    command=metadata.get("command", "engine.run"),
                    context={
                        k: v for k, v in metadata.items() if v is not None
                    },
                )
            return MappingResult(
                assignment=mapping.assignment.copy(),
                metrics=metrics,
                metadata=metadata,
                profile=profile_doc,
                mapping=mapping,
            )
        finally:
            if own_prof is not None:
                obs.disable()
            if prev_kernel is not None:
                set_default_kernel(prev_kernel)

    def run_many(
        self,
        requests: list[MappingRequest],
        jobs: int = 1,
        retries: int = 0,
        retry_delay: float = 0.0,
        keep_mapping: bool = False,
    ) -> list[MappingResult]:
        """Run a batch; results come back in request order.

        ``jobs > 1`` fans out over a process pool (requests must then be
        spec-based so they pickle); each request is retried up to ``retries``
        times on failure before the error propagates, mirroring the
        experiment runner's resilience knobs. Serial runs share one
        in-process topology/context cache across the whole batch; pooled
        workers each warm their own shared cache.

        ``keep_mapping`` makes the result-payload contract explicit and
        identical on both paths: by default every result comes back with
        ``mapping=None`` (serial runs included — only the assignment,
        metrics and metadata survive the batch), while ``keep_mapping=True``
        retains the full :class:`~repro.mapping.base.Mapping` object
        everywhere, pickling it back from pooled workers.

        Retry delays never block the dispatch loop: a failed request is
        *rescheduled* with a deadline while already-finished futures keep
        being collected, so one slow retry cannot delay unrelated results.

        Each request's ``validate`` level travels with it, so pooled workers
        enforce the same invariants as serial runs. Both paths fail fast on
        :class:`~repro.exceptions.ValidationError`: a deterministic
        invariant violation cannot be retried away, so it propagates
        immediately without consuming the retry budget.
        """
        if jobs <= 1:
            results = [
                self._run_with_retries(req, retries, retry_delay)
                for req in requests
            ]
            if not keep_mapping:
                for result in results:
                    result.mapping = None
            return results

        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

        results: list[MappingResult | None] = [None] * len(requests)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {
                pool.submit(_run_request, req, keep_mapping): (i, 0)
                for i, req in enumerate(requests)
            }
            # Failed requests waiting out their retry delay: (ready_at,
            # index, next_attempt). They are resubmitted when their deadline
            # passes instead of sleeping inline, so collection never stalls.
            delayed: list[tuple[float, int, int]] = []
            while pending or delayed:
                now = time.monotonic()
                due = [entry for entry in delayed if entry[0] <= now]
                if due:
                    delayed = [entry for entry in delayed if entry[0] > now]
                    for _, index, attempt in due:
                        future = pool.submit(
                            _run_request, requests[index], keep_mapping
                        )
                        pending[future] = (index, attempt)
                if not pending:
                    time.sleep(max(0.0, min(e[0] for e in delayed) - now))
                    continue
                timeout = (
                    max(0.0, min(e[0] for e in delayed) - now)
                    if delayed
                    else None
                )
                done, _ = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index, attempt = pending.pop(future)
                    exc = future.exception()
                    if exc is None:
                        results[index] = future.result()
                    elif isinstance(exc, ValidationError):
                        raise exc
                    elif attempt < retries:
                        delayed.append((
                            time.monotonic() + retry_delay, index, attempt + 1,
                        ))
                    else:
                        raise exc
        return results  # type: ignore[return-value]

    def _run_with_retries(
        self, request: MappingRequest, retries: int, retry_delay: float
    ) -> MappingResult:
        attempt = 0
        while True:
            try:
                return self.run(request)
            except ValidationError:
                raise
            except Exception:
                if attempt >= retries:
                    raise
                attempt += 1
                if retry_delay:
                    time.sleep(retry_delay)


def _run_request(
    request: MappingRequest, keep_mapping: bool = False
) -> MappingResult:
    """Pool worker: run one request; unless ``keep_mapping``, drop the
    heavyweight Mapping object (the assignment/metrics/metadata travel back;
    graph and topology do not)."""
    result = MappingEngine().run(request)
    if not keep_mapping:
        result.mapping = None
    return result
