"""Spec-string mapper construction — the single strategy-resolution path.

Mirrors :mod:`repro.topology.factory`: a mapper is named by a short
``kind[:key=value;key=value...]`` string, e.g. ::

    topolb                              second-order TopoLB, paper defaults
    topolb:order=3;selection=volume     ablation configuration
    refine:base=topolb;passes=3         TopoLB + 3 swap sweeps
    pipeline:partitioner=greedy;inner=topolb
    pipeline:inner=topolb,order=3;refine=on

Option values that are themselves mapper specs (``refine:base=...``,
``pipeline:inner=...``, ``multilevel:inner=...``) use ``,`` instead of ``;``
to separate their own options — one nesting level, which covers every
composition the paper uses (``pipeline`` already owns the partition and
refine stages, so nothing needs a nested pipeline). A fully ','-separated
spelling such as ``multilevel:inner=topolb,levels=auto`` also parses:
trailing ``key=value`` segments that fail to parse as nested options and
name options of the *enclosing* kind spill back out to it (use the explicit
``inner=topolb:kernel=reference`` colon form to force inner binding when a
key exists on both sides).

The classic Charm++ strategy names (``TopoLB``, ``RefineTopoLB``,
``GreedyLB``, ...) remain valid everywhere a spec is accepted: they are
aliases in :data:`STRATEGY_SPECS`, each expanding to its canonical spec
string. :func:`mapper_from_spec` is therefore the one entry point the CLI,
the experiment scripts, and the runtime registry all resolve through.

Canonical form (:func:`canonical_mapper_spec`) keeps exactly the options the
caller gave, normalized and in registry order, so
``parse(canonical(parse(s)))`` is a fixed point and recorded specs replay
byte-for-byte.

Everything raises :class:`~repro.exceptions.SpecError` on malformed input;
messages start with ``unknown strategy`` for unknown names so callers
migrating from the old registry keep their error handling.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SpecError

__all__ = [
    "OptionSpec",
    "MapperKind",
    "MAPPER_KINDS",
    "STRATEGY_SPECS",
    "parse_mapper_spec",
    "canonical_mapper_spec",
    "mapper_from_spec",
    "describe_mappers",
]


# --------------------------------------------------------------------- values
def _parse_int(text: str) -> int:
    try:
        return int(text)
    except ValueError as exc:
        raise SpecError(f"expected an integer, got {text!r}") from exc


def _parse_positive_int(text: str) -> int:
    value = _parse_int(text)
    if value < 1:
        raise SpecError(f"expected a positive integer, got {text!r}")
    return value


def _parse_nonnegative_int(text: str) -> int:
    value = _parse_int(text)
    if value < 0:
        raise SpecError(f"expected a non-negative integer, got {text!r}")
    return value


def _parse_levels(text: str) -> object:
    if text.strip().lower() == "auto":
        return "auto"
    return _parse_positive_int(text)


def _parse_flag(text: str) -> bool:
    low = text.strip().lower()
    if low in ("on", "true", "1", "yes"):
        return True
    if low in ("off", "false", "0", "no"):
        return False
    raise SpecError(f"expected on/off, got {text!r}")


@dataclass(frozen=True)
class OptionSpec:
    """One accepted ``key=value`` option of a mapper kind."""

    name: str
    doc: str
    default: str
    #: raw string -> parsed value; raises SpecError on bad input.
    parse: Callable[[str], object] = field(repr=False)
    #: closed vocabulary, when there is one (documentation + validation).
    choices: tuple[str, ...] | None = None
    #: parsed value -> canonical string (identity-ish by default).
    canon: Callable[[object], str] = field(default=str, repr=False)
    #: True when the value is itself a mapper spec (',' separators) — such
    #: values may carry trailing options of the *enclosing* kind, which the
    #: parser spills back out when the full value fails to parse.
    nested: bool = False

    def parse_value(self, text: str) -> object:
        text = text.strip()
        if self.choices is not None:
            low = text.lower()
            if low not in self.choices:
                raise SpecError(
                    f"bad value {text!r} for option {self.name!r}; "
                    f"expected one of {self.choices}"
                )
            return low
        try:
            return self.parse(text)
        except SpecError as exc:
            raise SpecError(f"bad value for option {self.name!r}: {exc}") from None


def _choice(name: str, doc: str, default: str, *choices: str) -> OptionSpec:
    return OptionSpec(name, doc, default, parse=str, choices=choices)


def _int_opt(name: str, doc: str, default: str) -> OptionSpec:
    return OptionSpec(name, doc, default, parse=_parse_positive_int)


def _flag_opt(name: str, doc: str, default: str) -> OptionSpec:
    return OptionSpec(
        name, doc, default, parse=_parse_flag,
        canon=lambda v: "on" if v else "off",
    )


def _parse_nested(text: str) -> "ParsedSpec":
    # A nested value is a mapper spec whose separators are ',' instead of
    # ':'/';' (e.g. ``topolb,order=3``), so it can sit inside the enclosing
    # spec's own option list. The explicit ':' form is accepted too.
    text = text.strip()
    if ":" in text:
        inner = text.replace(",", ";")
    else:
        head, sep, rest = text.partition(",")
        inner = head + (":" + rest.replace(",", ";") if sep else "")
    return parse_mapper_spec(inner)


def _canon_nested(parsed: object) -> str:
    return parsed.canonical.replace(":", ",").replace(";", ",")


def _nested_opt(name: str, doc: str, default: str) -> OptionSpec:
    # The value is itself a mapper spec; parse eagerly so errors surface at
    # parse time, canonicalize recursively.
    return OptionSpec(
        name, doc, default, parse=_parse_nested, canon=_canon_nested, nested=True
    )


_KERNEL_OPT = _choice(
    "kernel", "cycle-body implementation (bit-identical outputs)",
    "process default", "vectorized", "reference", "incremental",
)


# ---------------------------------------------------------------------- kinds
@dataclass(frozen=True)
class ParsedSpec:
    """A validated mapper spec: kind + explicitly-given options."""

    kind: str
    options: dict[str, object]
    canonical: str

    def build(self, seed: int | None = None):
        """Instantiate the mapper (see :func:`mapper_from_spec`)."""
        return MAPPER_KINDS[self.kind].build(self.options, seed)


@dataclass(frozen=True)
class MapperKind:
    """A registered mapper kind: its options and its builder."""

    kind: str
    doc: str
    options: tuple[OptionSpec, ...]
    #: (parsed options, seed) -> Mapper. Seed conventions match the old
    #: runtime registry exactly (bit-for-bit): mappers that used
    #: ``seed or 0`` still do, RandomMapper still takes the raw seed.
    build: Callable[[dict[str, object], int | None], object] = field(repr=False)

    def option(self, name: str) -> OptionSpec:
        for opt in self.options:
            if opt.name == name:
                return opt
        raise SpecError(
            f"unknown option {name!r} for mapper kind {self.kind!r}; "
            f"accepted: {tuple(o.name for o in self.options) or '(none)'}"
        )


def _kernel_arg(opts: dict[str, object]) -> str | None:
    value = opts.get("kernel")
    return None if value is None else str(value)


def _build_random(opts, seed):
    from repro.mapping.random_map import RandomMapper

    return RandomMapper(seed=seed)


def _build_identity(opts, seed):
    from repro.mapping.random_map import IdentityMapper

    return IdentityMapper()


def _build_topolb(opts, seed):
    from repro.mapping.estimation import EstimatorOrder
    from repro.mapping.topolb import TopoLB

    return TopoLB(
        order=EstimatorOrder(int(opts.get("order", 2))),
        dtype=np.float32 if opts.get("dtype") == "float32" else np.float64,
        selection=str(opts.get("selection", "gain")),
        kernel=_kernel_arg(opts),
    )


def _build_topocentlb(opts, seed):
    from repro.mapping.topocentlb import TopoCentLB

    return TopoCentLB()


def _build_refine(opts, seed):
    from repro.mapping.refine import RefineTopoLB

    base = opts.get("base")
    return RefineTopoLB(
        base=base.build(seed) if base is not None else None,
        max_sweeps=int(opts.get("passes", 10)),
        seed=seed or 0,
        kernel=_kernel_arg(opts),
        block_size=int(opts.get("block", 64)),
    )


def _build_anneal(opts, seed):
    from repro.mapping.annealing import SimulatedAnnealingMapper

    return SimulatedAnnealingMapper(
        steps=int(opts.get("steps", 20_000)), seed=seed or 0
    )


def _build_genetic(opts, seed):
    from repro.mapping.evolutionary import GeneticMapper
    from repro.mapping.topolb import TopoLB

    # Seeded population (Orduña-style) so the strategy is usable at LB time.
    return GeneticMapper(
        population=int(opts.get("population", 40)),
        generations=int(opts.get("generations", 60)),
        seed=seed or 0,
        seed_mapper=TopoLB(),
    )


def _build_bokhari(opts, seed):
    from repro.mapping.bokhari import BokhariMapper

    return BokhariMapper(jumps=int(opts.get("jumps", 4)), seed=seed or 0)


def _build_recursive(opts, seed):
    from repro.mapping.recursive_embedding import RecursiveEmbeddingMapper

    return RecursiveEmbeddingMapper(seed=seed or 0)


def _build_linear(opts, seed):
    from repro.mapping.linear_order import LinearOrderingMapper

    return LinearOrderingMapper()


def _build_sfc(opts, seed):
    from repro.mapping.sfc import SFCMapper

    return SFCMapper(curve=str(opts.get("curve", "hilbert")))


def _build_hybrid(opts, seed):
    from repro.mapping.hybrid import HybridTopoLB

    return HybridTopoLB(num_blocks=int(opts.get("blocks", 8)), seed=seed or 0)


def _build_pipeline(opts, seed):
    from repro.mapping.pipeline import TwoPhaseMapper
    from repro.mapping.refine import RefineTopoLB

    if opts.get("partitioner") == "greedy":
        from repro.partition.greedy import GreedyPartitioner

        partitioner = GreedyPartitioner()
    else:
        from repro.partition.multilevel import MultilevelPartitioner

        partitioner = MultilevelPartitioner()
    inner = opts.get("inner")
    if inner is not None:
        mapper = inner.build(seed)
    else:
        from repro.mapping.estimation import EstimatorOrder
        from repro.mapping.topolb import TopoLB

        mapper = TopoLB(order=EstimatorOrder.SECOND)
    refiner = RefineTopoLB(seed=seed or 0) if opts.get("refine") else None
    return TwoPhaseMapper(partitioner=partitioner, mapper=mapper, refiner=refiner)


def _build_multilevel(opts, seed):
    from repro.mapping.hierarchical import HierarchicalMapper

    inner = opts.get("inner")
    return HierarchicalMapper(
        inner=inner.build(seed) if inner is not None else None,
        levels=opts.get("levels", "auto"),
        refine_window=int(opts.get("refine_window", 2)),
        stop=int(opts.get("stop", 1024)),
        aggregate=str(opts.get("aggregate", "representative")),
        seed=seed or 0,
        kernel=_kernel_arg(opts),
    )


#: kind -> MapperKind. Option order here *is* canonical order.
MAPPER_KINDS: dict[str, MapperKind] = {
    kind.kind: kind
    for kind in (
        MapperKind(
            "random", "uniformly random placement (the paper's baseline)",
            (), _build_random,
        ),
        MapperKind(
            "identity", "task i on processor i (control row)",
            (), _build_identity,
        ),
        MapperKind(
            "topolb", "the paper's TopoLB heuristic (Algorithm 1)",
            (
                _choice("order", "estimation-function order (Section 4.3)",
                        "2", "1", "2", "3"),
                _choice("selection", "per-cycle task-selection rule",
                        "gain", "gain", "max_cost", "volume"),
                _choice("dtype", "fest-table floating dtype",
                        "float64", "float64", "float32"),
                _KERNEL_OPT,
            ),
            _build_topolb,
        ),
        MapperKind(
            "topocentlb", "Baba et al.'s greedy placed-volume heuristic",
            (), _build_topocentlb,
        ),
        MapperKind(
            "refine", "RefineTopoLB pairwise-swap refiner (Section 5.2.3)",
            (
                _nested_opt("base", "mapper producing the initial mapping "
                            "(a spec with ',' separators)", "none"),
                _int_opt("passes", "maximum full sweeps over the tasks", "10"),
                _int_opt("block", "vectorized-kernel block size", "64"),
                _KERNEL_OPT,
            ),
            _build_refine,
        ),
        MapperKind(
            "anneal", "simulated-annealing mapper",
            (_int_opt("steps", "annealing steps", "20000"),),
            _build_anneal,
        ),
        MapperKind(
            "genetic", "genetic mapper with TopoLB-seeded population",
            (
                _int_opt("population", "population size", "40"),
                _int_opt("generations", "generations", "60"),
            ),
            _build_genetic,
        ),
        MapperKind(
            "bokhari", "Bokhari-style pairwise-interchange with random jumps",
            (_int_opt("jumps", "random restarts", "4"),),
            _build_bokhari,
        ),
        MapperKind(
            "recursive", "recursive graph-bisection embedding",
            (), _build_recursive,
        ),
        MapperKind(
            "linear", "space-filling linear-ordering mapper",
            (), _build_linear,
        ),
        MapperKind(
            "sfc", "space-filling-curve geometric mapper for "
            "coordinate-bearing task graphs (Deveci et al.)",
            (
                _choice("curve", "space-filling curve through task coords",
                        "hilbert", "hilbert", "morton"),
            ),
            _build_sfc,
        ),
        MapperKind(
            "hybrid", "blocked hybrid TopoLB",
            (_int_opt("blocks", "number of blocks", "8"),),
            _build_hybrid,
        ),
        MapperKind(
            "pipeline", "partition -> coalesce -> map -> (refine) -> expand",
            (
                _choice("partitioner", "phase-1 partitioner",
                        "multilevel", "multilevel", "greedy"),
                _nested_opt("inner", "phase-2 mapper "
                            "(a spec with ',' separators)", "topolb"),
                _flag_opt("refine", "apply RefineTopoLB to the group mapping",
                          "off"),
            ),
            _build_pipeline,
        ),
        MapperKind(
            "multilevel", "hierarchical coarsen -> map -> uncoarsen mapper "
            "for machines beyond the dense-table limit",
            (
                _nested_opt("inner", "coarsest-level mapper "
                            "(a spec with ',' separators)", "topolb"),
                OptionSpec("levels", "machine-coarsening level cap, or auto",
                           "auto", parse=_parse_levels),
                OptionSpec("refine_window",
                           "RefineTopoLB sweeps per uncoarsening level "
                           "(0 disables)", "2", parse=_parse_nonnegative_int),
                _int_opt("stop", "machine size the inner mapper runs at",
                         "1024"),
                _choice("aggregate", "coarse-machine distance aggregation",
                        "representative", "representative", "mean"),
                _KERNEL_OPT,
            ),
            _build_multilevel,
        ),
    )
}


#: Charm++ strategy name -> canonical spec string. These stay the public
#: names on the CLI and in reports; each is nothing but a spelling of a spec.
STRATEGY_SPECS: dict[str, str] = {
    "RandomLB": "pipeline:inner=random",
    "GreedyLB": "pipeline:partitioner=greedy;inner=random",
    "TopoCentLB": "pipeline:inner=topocentlb",
    "TopoLB": "pipeline:inner=topolb",
    "TopoLB1": "pipeline:inner=topolb,order=1",
    "TopoLB3": "pipeline:inner=topolb,order=3",
    "RefineTopoLB": "pipeline:inner=topolb;refine=on",
    "RefineTopoLB3": "pipeline:inner=topolb,order=3;refine=on",
    "AnnealLB": "pipeline:inner=anneal",
    "GeneticLB": "pipeline:inner=genetic",
    "BokhariLB": "pipeline:inner=bokhari",
    "RecursiveEmbedLB": "pipeline:inner=recursive",
    "LinearOrderLB": "pipeline:inner=linear",
    "HybridTopoLB": "pipeline:inner=hybrid",
    "MultilevelLB": "multilevel:inner=topolb",
}


# -------------------------------------------------------------------- parsing
def _split_nested_tail(
    kind: MapperKind, value: str
) -> tuple[str, list[str] | None]:
    """Peel trailing ``key=value`` comma segments naming options of ``kind``.

    Returns ``(head, spilled)`` where ``head`` is the remaining nested spec
    and ``spilled`` the peeled segments — or ``(value, None)`` when nothing
    peels (the caller then re-raises the original parse error).
    """
    segments = value.split(",")
    names = {o.name for o in kind.options}
    cut = len(segments)
    while cut > 1:
        seg_key, sep, _ = segments[cut - 1].partition("=")
        if sep and seg_key.strip().lower() in names:
            cut -= 1
        else:
            break
    if cut == len(segments):
        return value, None
    return ",".join(segments[:cut]), segments[cut:]


def parse_mapper_spec(spec: str) -> ParsedSpec:
    """Parse and validate a mapper spec (or strategy alias) string.

    Returns a :class:`ParsedSpec` whose ``canonical`` field round-trips:
    parsing it again yields an equal spec.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise SpecError(f"mapper spec must be a non-empty string, got {spec!r}")
    spec = spec.strip()
    alias = STRATEGY_SPECS.get(spec)
    if alias is not None:
        return parse_mapper_spec(alias)

    kind_text, _, params = spec.partition(":")
    kind_name = kind_text.strip().lower()
    kind = MAPPER_KINDS.get(kind_name)
    if kind is None:
        raise SpecError(
            f"unknown strategy or mapper kind {kind_text.strip()!r}; "
            f"strategies: {sorted(STRATEGY_SPECS)}; "
            f"kinds: {sorted(MAPPER_KINDS)}"
        )

    options: dict[str, object] = {}
    queue = [item.strip() for item in params.split(";") if item.strip()]
    while queue:
        item = queue.pop(0)
        key, sep, value = item.partition("=")
        key = key.strip().lower()
        if not sep:
            raise SpecError(
                f"bad option {item!r} in {spec!r}; expected key=value"
            )
        opt = kind.option(key)  # raises SpecError on unknown keys
        if key in options:
            raise SpecError(f"duplicate option {key!r} in {spec!r}")
        try:
            options[key] = opt.parse_value(value)
        except SpecError:
            # A nested value like ``inner=topolb,levels=auto`` may carry
            # trailing ','-separated options of the *enclosing* kind (the
            # natural spelling when the whole spec uses ','). Only re-split
            # when the full value fails to parse, so every currently-valid
            # spec keeps its meaning; within the tail, keys of the enclosing
            # kind bind outward (use the explicit ':' nested form to force
            # inner binding).
            head, spilled = (None, None)
            if opt.nested and "," in value:
                head, spilled = _split_nested_tail(kind, value)
            if spilled is None:
                raise
            options[key] = opt.parse_value(head)
            queue.extend(seg.strip() for seg in spilled)

    canonical = kind_name
    given = [opt for opt in kind.options if opt.name in options]
    if given:
        canonical += ":" + ";".join(
            f"{opt.name}={opt.canon(options[opt.name])}" for opt in given
        )
    return ParsedSpec(kind_name, options, canonical)


def canonical_mapper_spec(spec: str) -> str:
    """The canonical spelling of ``spec`` (aliases expand to their spec)."""
    return parse_mapper_spec(spec).canonical


def mapper_from_spec(spec: str, seed: int | None = None):
    """Build a mapper from a spec string or Charm++ strategy alias.

    The single resolution path: the CLI, the experiment scripts, the runtime
    registry, and :class:`repro.engine.MappingEngine` all end up here.
    """
    return parse_mapper_spec(spec).build(seed)


def describe_mappers() -> list[str]:
    """Human-readable registry listing for ``repro-map --list-strategies``."""
    lines = ["strategies (aliases, usable anywhere a spec is):"]
    for name in sorted(STRATEGY_SPECS):
        lines.append(f"  {name:<18} = {STRATEGY_SPECS[name]}")
    lines.append("")
    lines.append("mapper kinds (spec grammar: kind[:key=value;key=value...]):")
    for kind_name in sorted(MAPPER_KINDS):
        kind = MAPPER_KINDS[kind_name]
        lines.append(f"  {kind_name:<12} {kind.doc}")
        for opt in kind.options:
            vocab = "|".join(opt.choices) if opt.choices else "<value>"
            lines.append(
                f"      {opt.name}={vocab}  (default {opt.default}) — {opt.doc}"
            )
    return lines
