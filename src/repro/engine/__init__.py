"""repro.engine — the unified mapping engine.

One way to name, configure, and run a mapping anywhere in the codebase:

* :func:`mapper_from_spec` / :data:`STRATEGY_SPECS` — the spec-string mapper
  factory and the Charm++ alias table (the single strategy registry);
* :class:`MappingRequest` → :meth:`MappingEngine.run` →
  :class:`MappingResult` — resolve, map, and measure through one path, with
  :meth:`MappingEngine.run_many` for batches;
* :func:`graph_from_spec` — spec-string task graphs for fully declarative
  requests;
* the shared :class:`~repro.mapping.context.MappingContext` (re-exported
  here) backing it all.

See ``docs/ARCHITECTURE.md`` for the layering and request lifecycle.
"""

from repro.engine.core import (
    MappingEngine,
    MappingRequest,
    MappingResult,
    canonical_command,
    graph_from_spec,
)
from repro.engine.specs import (
    MAPPER_KINDS,
    STRATEGY_SPECS,
    MapperKind,
    OptionSpec,
    canonical_mapper_spec,
    describe_mappers,
    mapper_from_spec,
    parse_mapper_spec,
)
from repro.mapping.context import MappingContext, context_for

__all__ = [
    "MappingEngine",
    "MappingRequest",
    "MappingResult",
    "MappingContext",
    "context_for",
    "graph_from_spec",
    "canonical_command",
    "MAPPER_KINDS",
    "STRATEGY_SPECS",
    "MapperKind",
    "OptionSpec",
    "canonical_mapper_spec",
    "describe_mappers",
    "mapper_from_spec",
    "parse_mapper_spec",
]
