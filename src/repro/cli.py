"""``repro-map`` — command-line mapping of task graphs onto machines.

The tool a downstream user actually wants: feed it a task graph (JSON, as
written by :func:`repro.taskgraph.save_taskgraph` or an LB dump from
:class:`repro.runtime.LBDatabase`), a machine spec, and a strategy name;
get a placement JSON plus a quality report.

Examples::

    repro-map --taskgraph app.json --topology torus:8x8 --strategy TopoLB
    repro-map --taskgraph dump.json --lb-dump --topology mesh:4x4x4 \
              --strategy RefineTopoLB --output placement.json
    repro-map --taskgraph app.json --topology torus:8x8 --profile prof.json
    repro-map --stats prof.json
    repro-map --list-strategies

``--profile`` records per-phase wall times, mapper repair counters, and —
via a short network-simulator replay of the produced placement — per-link
load summaries, all written as a schema-validated ``repro-profile-v1``
artifact (see ``docs/OBSERVABILITY.md``). ``--stats`` renders such an
artifact as a human-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Map a task graph onto a machine topology (TopoLB et al.)",
    )
    parser.add_argument("--taskgraph", type=Path,
                        help="task-graph JSON (repro-taskgraph-v1)")
    parser.add_argument("--lb-dump", action="store_true",
                        help="input is an LB dump (repro-lbdump-v1) instead")
    parser.add_argument("--topology", help="machine spec, e.g. torus:8x8x8")
    parser.add_argument("--strategy", default="TopoLB",
                        help="strategy name or mapper spec string, e.g. "
                             "TopoLB or pipeline:inner=topolb,order=3;refine=on "
                             "(see --list-strategies)")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    # Literal choices so building the parser stays import-light; validated
    # again by set_default_kernel against repro.mapping.kernels.KERNELS.
    parser.add_argument("--kernel",
                        choices=("vectorized", "reference", "incremental"),
                        default=None,
                        help="mapper kernel for this run (default: the "
                             "process-wide default, i.e. vectorized)")
    parser.add_argument("--output", type=Path,
                        help="write placement JSON here (default: stdout report only)")
    parser.add_argument("--profile", type=Path,
                        help="record telemetry and write a repro-profile-v1 JSON here")
    parser.add_argument("--simulate-iters", type=int, default=None,
                        help="replay N Jacobi-style iterations through the network "
                             "simulator (default: 1 when --profile is set, else 0)")
    parser.add_argument("--netsim-mode", choices=("des", "flow"),
                        default="des",
                        help="network evaluation for --simulate-iters: 'des' "
                             "replays through the per-packet simulator, "
                             "'flow' uses the static flow-level contention "
                             "estimator (fast; lower-bound makespan — see "
                             "docs/ARCHITECTURE.md for the validity envelope)")
    parser.add_argument("--buffer-bytes", type=float, default=None,
                        metavar="BYTES",
                        help="finite per-link buffer capacity for the DES "
                             "replay (default: unbounded FIFO queues); "
                             "overload behaviour is set by --overload-policy "
                             "and tail latencies are reported per size class")
    parser.add_argument("--overload-policy", choices=("drop", "ecn", "credit"),
                        default="drop",
                        help="what a full finite buffer does (only with "
                             "--buffer-bytes): 'drop' tail-drops and "
                             "retransmits end-to-end, 'ecn' marks past a "
                             "threshold and paces marked flows, 'credit' "
                             "applies lossless hop-by-hop backpressure")
    parser.add_argument("--stats", type=Path, metavar="PROFILE",
                        help="summarize an existing profile JSON and exit")
    parser.add_argument("--list-strategies", action="store_true",
                        help="print the unified mapper registry (strategy "
                             "aliases plus spec kinds and their options) and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_strategies:
        from repro.engine import describe_mappers

        try:
            print("\n".join(describe_mappers()))
        except BrokenPipeError:  # e.g. `repro-map --list-strategies | head`
            sys.stderr.close()
        return 0

    if args.stats is not None:
        from repro.obs import load_profile, summarize_profile

        try:
            print(summarize_profile(load_profile(args.stats)))
        except BrokenPipeError:  # e.g. `repro-map --stats ... | head`
            sys.stderr.close()
            return 0
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    if not args.taskgraph or not args.topology:
        parser.error("--taskgraph and --topology are required "
                     "(or --list-strategies / --stats)")
    if args.simulate_iters is not None and args.simulate_iters < 0:
        parser.error("--simulate-iters must be >= 0")
    if args.buffer_bytes is not None and args.buffer_bytes <= 0:
        parser.error("--buffer-bytes must be positive")
    if args.buffer_bytes is not None and args.netsim_mode == "flow":
        parser.error("--buffer-bytes requires the DES (--netsim-mode des); "
                     "the flow estimator has no buffer model")

    try:
        report = run_mapping(
            args.taskgraph, args.lb_dump, args.topology, args.strategy,
            args.seed, args.output, profile=args.profile,
            simulate_iters=args.simulate_iters, kernel=args.kernel,
            netsim_mode=args.netsim_mode,
            buffer_bytes=args.buffer_bytes,
            overload_policy=args.overload_policy,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    width = max(len(k) for k in report)
    for key, value in report.items():
        shown = f"{value:.6g}" if isinstance(value, float) else value
        print(f"{key.ljust(width)}  {shown}")
    return 0


def run_mapping(graph_path: Path, is_lb_dump: bool, topology_spec: str,
                strategy: str, seed: int, output: Path | None,
                profile: Path | None = None,
                simulate_iters: int | None = None,
                kernel: str | None = None,
                netsim_mode: str = "des",
                buffer_bytes: float | None = None,
                overload_policy: str = "drop") -> dict:
    """Load inputs, run the strategy, optionally replay/profile/write."""
    from repro import obs
    from repro.engine import canonical_command, canonical_mapper_spec
    from repro.mapping.estimation import (
        average_distance_vector,
        centered_distance_matrix,
    )
    from repro.mapping.kernels import get_default_kernel, set_default_kernel
    from repro.mapping.metrics import _MATRIX_LIMIT
    from repro.runtime.lbdb import LBDatabase
    from repro.runtime.simulation import replay_strategy
    from repro.taskgraph.io import load_taskgraph
    from repro.topology.factory import topology_from_spec

    if simulate_iters is None:
        simulate_iters = 1 if profile is not None else 0

    prof = obs.enable() if profile is not None else None
    prev_kernel = set_default_kernel(kernel) if kernel is not None else None
    try:
        with obs.timer("cli.load"):
            if is_lb_dump:
                database = LBDatabase.load(graph_path)
            else:
                database = LBDatabase.from_taskgraph(load_taskgraph(graph_path))
            topology = topology_from_spec(topology_spec)
            # Building the machine model is part of loading it: warm the
            # shared distance tables here so the mapper timers below measure
            # mapping, not O(p^2) table construction. Above the dense-table
            # limit the mappers themselves never materialize a p x p matrix
            # (they stream distance rows), so warming one here would be the
            # only O(p^2) allocation in the whole run — skip it.
            if topology.num_nodes <= _MATRIX_LIMIT:
                average_distance_vector(topology)
                centered_distance_matrix(topology)

        with obs.timer("cli.map"):
            report, mapping = replay_strategy(database, topology, strategy, seed=seed)

        netsim_summary = None
        if simulate_iters > 0:
            netsim_summary = _replay_network(
                mapping, report, simulate_iters, mode=netsim_mode,
                buffer_bytes=buffer_bytes, overload_policy=overload_policy,
            )

        if output is not None:
            output.write_text(json.dumps({
                "format": "repro-placement-v1",
                "strategy": strategy,
                "topology": topology_spec,
                "placement": mapping.assignment.tolist(),
            }))
            report["placement_written"] = str(output)

        if prof is not None:
            doc = obs.build_profile(
                prof,
                # The full canonical invocation — strategy in canonical spec
                # form plus the seed and kernel flags — so a recorded profile
                # identifies the exact run that produced it.
                command=canonical_command(strategy, topology_spec, seed, kernel),
                context={
                    "taskgraph": str(graph_path),
                    "topology": topology_spec,
                    "strategy": strategy,
                    "spec": canonical_mapper_spec(strategy),
                    "seed": seed,
                    "kernel": get_default_kernel(),
                    "num_objects": report["num_objects"],
                    "num_processors": report["num_processors"],
                    "simulate_iters": simulate_iters,
                },
                netsim=netsim_summary,
            )
            obs.save_profile(doc, profile)
            report["profile_written"] = str(profile)
    finally:
        if prev_kernel is not None:
            set_default_kernel(prev_kernel)
        if prof is not None:
            obs.disable()
    return report


def _replay_network(mapping, report: dict, iterations: int,
                    mode: str = "des",
                    buffer_bytes: float | None = None,
                    overload_policy: str = "drop") -> dict:
    """Evaluate the mapped app's network behaviour; extend ``report`` and
    return the per-link load summary for the profile's ``netsim`` section.

    ``mode="des"`` replays through the per-packet simulator; ``mode="flow"``
    runs the static flow-level estimator instead — same traffic, no event
    queue, makespan reported as a lower bound (``sim_time_us`` is then that
    bound, not a measured completion time). With ``buffer_bytes`` set the
    DES models finite link buffers under ``overload_policy``, and the
    summary gains a ``tail`` section with p50/p99/p999 latencies, size-class
    rows, and overload counters.
    """
    from repro import obs

    if mode == "flow":
        from repro.netsim.flow import flow_evaluate, flow_summary

        with obs.timer("cli.simulate"):
            flow = flow_evaluate(mapping, iterations=iterations)
        report["sim_iterations"] = iterations
        report["sim_mode"] = "flow"
        report["sim_time_us"] = flow.makespan_lower_bound
        report["sim_max_link_bytes"] = flow.max_link_bytes
        return flow_summary(flow)

    from repro.netsim.appsim import IterativeApplication
    from repro.netsim.simulator import NetworkSimulator
    from repro.netsim.stats import link_summary, tail_summary

    with obs.timer("cli.simulate"):
        kwargs = {}
        if buffer_bytes is not None:
            # Buffered replay. The Jacobi loop is closed-loop — every task
            # waits on its neighbor messages — so a finally-dropped message
            # would wedge the app; make retransmission persistent (the
            # closed loop self-limits, so retries drain) and keep the
            # unroutable backstop as drop-and-count rather than abort.
            kwargs = {"buffer_bytes": buffer_bytes,
                      "overload_policy": overload_policy,
                      "unroutable_policy": "drop",
                      "max_retries": 64}
        sim = NetworkSimulator(mapping.topology, **kwargs)
        app = IterativeApplication(mapping, sim, iterations=iterations)
        result = app.run()
    report["sim_iterations"] = iterations
    report["sim_mode"] = "des"
    report["sim_time_us"] = result.total_time
    report["sim_mean_latency_us"] = result.mean_message_latency
    report["sim_messages"] = result.messages_delivered
    summary = link_summary(sim)
    tail = tail_summary(sim, iteration_times=result.iteration_times)
    summary["tail"] = tail
    report["sim_p50_us"] = tail["latency"]["p50"]
    report["sim_p99_us"] = tail["latency"]["p99"]
    report["sim_p999_us"] = tail["latency"]["p999"]
    if buffer_bytes is not None:
        report["sim_dropped"] = tail["dropped"]
        report["sim_retransmits"] = tail["retransmits"]
        report["sim_ecn_marks"] = tail["ecn_marks"]
    return summary


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
