"""``repro-map`` — command-line mapping of task graphs onto machines.

The tool a downstream user actually wants: feed it a task graph (JSON, as
written by :func:`repro.taskgraph.save_taskgraph` or an LB dump from
:class:`repro.runtime.LBDatabase`), a machine spec, and a strategy name;
get a placement JSON plus a quality report.

Examples::

    repro-map --taskgraph app.json --topology torus:8x8 --strategy TopoLB
    repro-map --taskgraph dump.json --lb-dump --topology mesh:4x4x4 \
              --strategy RefineTopoLB --output placement.json
    repro-map --list-strategies
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Map a task graph onto a machine topology (TopoLB et al.)",
    )
    parser.add_argument("--taskgraph", type=Path,
                        help="task-graph JSON (repro-taskgraph-v1)")
    parser.add_argument("--lb-dump", action="store_true",
                        help="input is an LB dump (repro-lbdump-v1) instead")
    parser.add_argument("--topology", help="machine spec, e.g. torus:8x8x8")
    parser.add_argument("--strategy", default="TopoLB",
                        help="strategy name (see --list-strategies)")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument("--output", type=Path,
                        help="write placement JSON here (default: stdout report only)")
    parser.add_argument("--list-strategies", action="store_true",
                        help="print registered strategy names and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    from repro.runtime.strategies import STRATEGIES

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_strategies:
        for name in sorted(STRATEGIES):
            print(name)
        return 0

    if not args.taskgraph or not args.topology:
        parser.error("--taskgraph and --topology are required (or --list-strategies)")

    try:
        report = run_mapping(
            args.taskgraph, args.lb_dump, args.topology, args.strategy,
            args.seed, args.output,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    width = max(len(k) for k in report)
    for key, value in report.items():
        shown = f"{value:.6g}" if isinstance(value, float) else value
        print(f"{key.ljust(width)}  {shown}")
    return 0


def run_mapping(graph_path: Path, is_lb_dump: bool, topology_spec: str,
                strategy: str, seed: int, output: Path | None) -> dict:
    """Load inputs, run the strategy, optionally write the placement."""
    from repro.runtime.lbdb import LBDatabase
    from repro.runtime.simulation import simulate_strategy
    from repro.runtime.strategies import run_strategy
    from repro.taskgraph.io import load_taskgraph
    from repro.topology.factory import topology_from_spec

    if is_lb_dump:
        database = LBDatabase.load(graph_path)
    else:
        database = LBDatabase.from_taskgraph(load_taskgraph(graph_path))
    topology = topology_from_spec(topology_spec)

    report = simulate_strategy(database, topology, strategy, seed=seed)
    if output is not None:
        placement = run_strategy(strategy, database, topology, seed=seed)
        output.write_text(json.dumps({
            "format": "repro-placement-v1",
            "strategy": strategy,
            "topology": topology_spec,
            "placement": placement.tolist(),
        }))
        report["placement_written"] = str(output)
    return report
