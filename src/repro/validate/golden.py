"""Golden-regression corpus: pinned graph x topology x mapper triples.

Each ``tests/golden/*.json`` file records one fully spec-described mapping
run — the three specs, the seed, the exact assignment, and the exact
canonical metrics block. :func:`check_golden` replays the triple through the
:class:`~repro.engine.MappingEngine` (at any validation level, under either
kernel) and raises a structured ``golden-drift``
:class:`~repro.exceptions.ValidationError` if anything moved.

Regenerate *intentionally* with ``repro-validate --regenerate --golden
tests/golden`` after a deliberate behaviour change, and say so in the commit
message — EXPERIMENTS.md numbers likely moved too (see docs/VALIDATION.md).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "GOLDEN_FORMAT",
    "iter_golden_paths",
    "load_golden",
    "write_golden",
    "check_golden",
]

GOLDEN_FORMAT = "repro-golden-v1"

_REQUIRED_KEYS = ("format", "graph", "topology", "mapper", "seed",
                  "assignment", "metrics")


def iter_golden_paths(root: Path) -> list[Path]:
    """All corpus files under ``root`` (a directory or one ``.json`` file)."""
    root = Path(root)
    if root.is_file():
        return [root]
    return sorted(root.glob("*.json"))


def load_golden(path: Path) -> dict:
    """Read and structurally validate one golden document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(
            "golden-format", f"cannot read golden {path}: {exc}",
            spec={"golden": str(path)},
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != GOLDEN_FORMAT:
        raise ValidationError(
            "golden-format",
            f"{path} is not a {GOLDEN_FORMAT} document "
            f"(format={doc.get('format') if isinstance(doc, dict) else None!r})",
            spec={"golden": str(path)},
        )
    missing = [key for key in _REQUIRED_KEYS if key not in doc]
    if missing:
        raise ValidationError(
            "golden-format", f"{path} is missing keys {missing}",
            spec={"golden": str(path)},
        )
    return doc


def _run_triple(doc: dict, *, validate: str, kernel: str | None):
    from repro.engine import MappingEngine, MappingRequest

    return MappingEngine().run(MappingRequest(
        graph=doc["graph"],
        topology=doc["topology"],
        mapper=doc["mapper"],
        seed=doc["seed"],
        kernel=kernel,
        validate=validate,
        flow_metrics=bool(doc.get("flow_metrics", False)),
        netsim=doc.get("netsim"),
    ))


def write_golden(path: Path, *, graph: str, topology: str, mapper: str,
                 seed: int = 0, flow_metrics: bool = False,
                 netsim: dict | None = None) -> dict:
    """Run the triple at ``--validate full`` and pin its outputs to ``path``.

    With ``flow_metrics=True`` the engine also runs the flow-level
    contention estimator and the pinned metrics block gains the ``flow_*``
    keys — drift in the route accounting or the makespan bound then trips
    the corpus even when the assignment itself is unchanged. ``netsim`` (a
    ``MappingRequest.netsim`` knob dict, e.g. ``{"buffer_bytes": 4096,
    "overload_policy": "ecn"}``) additionally pins the buffered DES replay's
    ``des_*`` percentile/overload metrics — the finite-buffer timing model
    itself becomes regression-guarded.
    """
    result = _run_triple(
        {"graph": graph, "topology": topology, "mapper": mapper, "seed": seed,
         "flow_metrics": flow_metrics, "netsim": netsim},
        validate="full", kernel=None,
    )
    doc = {
        "format": GOLDEN_FORMAT,
        "graph": graph,
        "topology": topology,
        "mapper": mapper,
        "seed": seed,
        "assignment": result.assignment.tolist(),
        "metrics": result.metrics,
    }
    if flow_metrics:
        doc["flow_metrics"] = True
    if netsim is not None:
        doc["netsim"] = netsim
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def check_golden(path: Path, *, level: str = "full",
                 kernel: str | None = None) -> dict:
    """Replay one golden triple and compare against its pinned outputs.

    Runs the engine with per-request validation at ``level`` (so every
    invariant and oracle fires *before* the drift comparison), then checks
    the assignment and each metric for exact equality — the corpus exists to
    catch one-ULP drift, not just wrong answers. Returns the engine's
    metrics block on success.
    """
    doc = load_golden(path)
    spec = {
        "golden": str(path),
        "graph": doc["graph"],
        "topology": doc["topology"],
        "mapper": doc["mapper"],
        "seed": doc["seed"],
        "kernel": kernel,
    }
    from repro.validate.core import replay_command

    replay = replay_command(doc["graph"], doc["topology"], doc["mapper"],
                            doc["seed"], kernel, level)
    result = _run_triple(doc, validate=level, kernel=kernel)

    pinned = np.asarray(doc["assignment"], dtype=np.int64)
    if not np.array_equal(result.assignment, pinned):
        diff = np.flatnonzero(result.assignment != pinned)
        raise ValidationError(
            "golden-drift",
            f"assignment drifted from {path} at {len(diff)} tasks "
            f"(first: {diff[:8].tolist()}); if intentional, regenerate with "
            f"'repro-validate --regenerate --golden {Path(path).parent}'",
            spec=spec, replay=replay,
            details={"differing_tasks": int(len(diff))},
        )
    for key, want in doc["metrics"].items():
        got = result.metrics.get(key)
        if got != want:
            raise ValidationError(
                "golden-drift",
                f"metric {key!r} drifted from {path}: pinned {want!r}, "
                f"got {got!r}; if intentional, regenerate with "
                f"'repro-validate --regenerate --golden {Path(path).parent}'",
                spec=spec, replay=replay,
                details={"metric": key, "pinned": want, "got": got},
            )
    return result.metrics
