"""Invariant checkers, differential oracles, and metamorphic properties.

:func:`validate_mapping` is the one entry point: it runs the checks of the
requested tier against a produced assignment, records every check in a
:class:`ValidationReport`, and (by default) raises a structured
:class:`~repro.exceptions.ValidationError` on the first violation. Checks
that do not apply (no mapper spec, route-incapable machine, non-torus
topology, ...) are recorded as ``skipped`` with the reason, so a report
always says what was *not* proven, never silently narrows coverage.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SpecError, TopologyError, ValidationError
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology

__all__ = [
    "VALIDATION_LEVELS",
    "CheckResult",
    "ValidationReport",
    "replay_command",
    "validate_mapping",
]

#: Accepted values of ``MappingRequest.validate`` / ``--validate``.
VALIDATION_LEVELS = ("off", "cheap", "full")

#: Metamorphic checks rebuild the task graph with Python loops; above this
#: size they are skipped (recorded as such) rather than dominating the run.
_METAMORPHIC_TASK_LIMIT = 4096

#: Sampled nodes for the SubTopology distance oracle.
_SUBTOPOLOGY_SAMPLE = 64

# Differential comparisons of one quantity computed along two code paths are
# exact by design (same floating-point expressions); sums accumulated in a
# different *order* (per-task additivity, link loads, relabeled graphs) get
# this tolerance instead.
_RTOL = 1e-9
_ATOL = 1e-6


def _close(a: float, b: float) -> bool:
    return bool(np.isclose(a, b, rtol=_RTOL, atol=_ATOL))


@dataclass
class CheckResult:
    """Outcome of one invariant: ``ok``, ``skipped`` or ``violated``."""

    invariant: str
    status: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "status": self.status,
                "detail": self.detail}


@dataclass
class ValidationReport:
    """Every check run (or skipped) for one mapping, plus its spec context."""

    level: str
    context: dict = field(default_factory=dict)
    checks: list[CheckResult] = field(default_factory=list)
    #: ``repro-validate`` line reproducing this run (spec-described runs only).
    replay: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations()

    def violations(self) -> list[CheckResult]:
        return [c for c in self.checks if c.status == "violated"]

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "context": {k: v for k, v in self.context.items() if v is not None},
            "replay": self.replay,
            "checks": [c.to_dict() for c in self.checks],
        }


def replay_command(
    graph_spec: str | None,
    topology_spec: str | None,
    mapper_spec: str | None,
    seed: int | None,
    kernel: str | None,
    level: str,
) -> str | None:
    """The ``repro-validate`` line reproducing a validation run.

    Only spec-described runs are replayable; returns ``None`` when any of
    the three inputs was a live object with no recorded spec.
    """
    if not (graph_spec and topology_spec and mapper_spec):
        return None
    parts = [
        "repro-validate",
        f"--graph '{graph_spec}'",
        f"--topology '{topology_spec}'",
        f"--mapper '{mapper_spec}'",
        f"--seed {0 if seed is None else seed}",
    ]
    if kernel is not None:
        parts.append(f"--kernel {kernel}")
    parts.append(f"--validate {level}")
    return " ".join(parts)


class _Session:
    """One validate_mapping run: shared state + check bookkeeping."""

    def __init__(self, graph: TaskGraph, topology: Topology,
                 assignment: np.ndarray, report: ValidationReport, ctx,
                 allowed: np.ndarray | None):
        self.graph = graph
        self.topology = topology
        self.assignment = assignment
        self.report = report
        self.ctx = ctx
        self.allowed = allowed
        self.hop_bytes: float | None = None  # set by the additivity check

    def record(self, invariant: str, status: str, detail: str = "") -> None:
        self.report.checks.append(CheckResult(invariant, status, detail))


# ------------------------------------------------------------------ invariants
def _check_bounds(s: _Session) -> None:
    arr = s.assignment
    n, p = s.graph.num_tasks, s.topology.num_nodes
    if arr.shape != (n,):
        s.record("assignment-bounds", "violated",
                 f"assignment shape {arr.shape} != ({n},)")
        return
    if arr.dtype.kind not in "iu":
        s.record("assignment-bounds", "violated",
                 f"assignment dtype {arr.dtype} is not integral")
        return
    if len(arr) and (int(arr.min()) < 0 or int(arr.max()) >= p):
        s.record(
            "assignment-bounds", "violated",
            f"assignment references processors outside [0, {p}): "
            f"min={int(arr.min())}, max={int(arr.max())}",
        )
        return
    s.record("assignment-bounds", "ok")


def _check_injectivity(s: _Session) -> None:
    n, p = s.graph.num_tasks, s.topology.num_nodes
    # Capacity counts *usable* processors: an explicit mask, else the
    # auto-derived degraded-machine mask (as in _check_allowed_mask) — 64
    # tasks on a 64-node machine with 3 dead nodes is necessarily
    # many-to-one, not an injectivity violation.
    mask = s.allowed if s.allowed is not None else s.ctx.allowed()
    capacity = int(mask.sum()) if mask is not None else p
    if n > capacity:
        s.record("injectivity", "skipped",
                 f"{n} tasks on {capacity} processors is necessarily many-to-one")
        return
    unique, counts = np.unique(s.assignment, return_counts=True)
    if len(unique) != n:
        crowded = unique[counts > 1][:8]
        s.record(
            "injectivity", "violated",
            f"{n} tasks occupy only {len(unique)} processors with {capacity} "
            f"available; shared processors: {crowded.tolist()}",
        )
        return
    s.record("injectivity", "ok")


def _check_allowed_mask(s: _Session) -> None:
    mask = s.allowed
    if mask is None:
        mask = s.ctx.allowed()  # auto-derived on degraded machines
    if mask is None:
        s.record("allowed-mask", "skipped", "no allowed mask (pristine machine)")
        return
    bad = np.flatnonzero(~mask[s.assignment])
    if len(bad):
        s.record(
            "allowed-mask", "violated",
            f"{len(bad)} tasks placed on disallowed processors; first "
            f"offenders (task, processor): "
            f"{[(int(t), int(s.assignment[t])) for t in bad[:8]]}",
        )
        return
    s.record("allowed-mask", "ok")


def _check_additivity(s: _Session) -> None:
    from repro.mapping.metrics import hop_bytes, per_task_hop_bytes

    hb = hop_bytes(s.graph, s.topology, s.assignment)
    s.hop_bytes = hb
    per_task = per_task_hop_bytes(s.graph, s.topology, s.assignment)
    if not _close(per_task.sum() / 2.0, hb):
        s.record(
            "hop-bytes-additivity", "violated",
            f"per_task_hop_bytes.sum()/2 = {per_task.sum() / 2.0!r} but "
            f"hop_bytes = {hb!r}",
        )
        return
    s.record("hop-bytes-additivity", "ok")


def _check_lower_bound(s: _Session) -> None:
    from repro.mapping.bounds import hop_bytes_lower_bound

    if s.graph.num_tasks != s.topology.num_nodes:
        s.record("hop-bytes-lower-bound", "skipped",
                 "bound certified for bijective mappings only")
        return
    if len(np.unique(s.assignment)) != s.graph.num_tasks:
        s.record("hop-bytes-lower-bound", "skipped",
                 "mapping is not bijective")
        return
    bound = hop_bytes_lower_bound(s.graph, s.topology)
    hb = s.hop_bytes
    if hb is None:
        from repro.mapping.metrics import hop_bytes

        hb = hop_bytes(s.graph, s.topology, s.assignment)
    if hb < bound and not _close(hb, bound):
        s.record(
            "hop-bytes-lower-bound", "violated",
            f"hop_bytes = {hb!r} is below the certified lower bound {bound!r}",
        )
        return
    s.record("hop-bytes-lower-bound", "ok")


def _check_metrics_consistency(s: _Session, metrics: dict | None) -> None:
    from repro.mapping.metrics import (
        dilation_stats,
        hop_bytes,
        hops_per_byte,
        load_imbalance,
        metrics_block,
    )

    block = metrics if metrics is not None else metrics_block(
        s.graph, s.topology, s.assignment, ctx=s.ctx
    )
    standalone = {
        "hop_bytes": hop_bytes(s.graph, s.topology, s.assignment),
        "hops_per_byte": hops_per_byte(s.graph, s.topology, s.assignment),
        "load_imbalance": load_imbalance(s.graph, s.topology, s.assignment),
    }
    dil = dilation_stats(s.graph, s.topology, s.assignment)
    standalone["max_dilation"] = dil["max"]
    standalone["mean_dilation"] = dil["mean"]
    standalone["weighted_dilation"] = dil["weighted_mean"]
    for key, want in standalone.items():
        got = block.get(key)
        # metrics_block documents bitwise identity with the standalone
        # functions (same expressions, same gather) — compare exactly.
        if got != want:
            s.record(
                "metrics-block-consistency", "violated",
                f"metrics_block[{key!r}] = {got!r} but the standalone "
                f"function computes {want!r}",
            )
            return
    ctx_hb = s.ctx.hop_bytes(s.assignment)
    if ctx_hb != standalone["hop_bytes"]:
        s.record(
            "metrics-block-consistency", "violated",
            f"MappingContext.hop_bytes = {ctx_hb!r} but metrics.hop_bytes "
            f"= {standalone['hop_bytes']!r}",
        )
        return
    s.record("metrics-block-consistency", "ok")


# ------------------------------------------------------------------- oracles
def _check_link_load_conservation(s: _Session) -> None:
    from repro.mapping.metrics import hop_bytes, per_link_loads

    # Route-capable now means link-graph-capable: direct machines route over
    # processor links, indirect ones (fat-tree, dragonfly) over switch links
    # — the conservation law holds either way. Only metric-only wrappers
    # (grouped/sub/matrix machines) still skip here.
    try:
        loads = per_link_loads(s.graph, s.topology, s.assignment)
    except TopologyError as exc:
        s.record("link-load-conservation", "skipped",
                 f"topology is not link-graph-capable: {exc}")
        return
    # The conservation law assumes hop-minimal routes (route length equals
    # hop distance); weighted machines route minimally in *cost*, not hops.
    u, v, _ = s.graph.edge_arrays()
    for a, b in list(zip(u.tolist(), v.tolist()))[:16]:
        pa, pb = int(s.assignment[a]), int(s.assignment[b])
        if pa == pb:
            continue
        hops = len(s.topology.route(pa, pb)) - 1
        if hops != s.topology.distance(pa, pb):
            s.record("link-load-conservation", "skipped",
                     "routes are not hop-minimal (weighted metric)")
            return
    hb = s.hop_bytes
    if hb is None:
        hb = hop_bytes(s.graph, s.topology, s.assignment)
    total = float(sum(loads.values()))
    if not _close(total, hb):
        s.record(
            "link-load-conservation", "violated",
            f"per-link loads sum to {total!r} but hop_bytes = {hb!r}",
        )
        return
    s.record("link-load-conservation", "ok")


def _map_with_spec(s: _Session, mapper_spec: str, seed: int | None):
    from repro.engine.specs import mapper_from_spec

    mapper = mapper_from_spec(mapper_spec, seed)
    if s.allowed is not None:
        return mapper.map(s.graph, s.topology, allowed=s.allowed)
    return mapper.map(s.graph, s.topology)


def _check_kernel_differential(s: _Session, mapper_spec: str | None,
                               seed: int | None, kernel: str | None) -> None:
    from repro.mapping.kernels import KERNELS, get_default_kernel, set_default_kernel

    if mapper_spec is None:
        s.record("kernel-differential", "skipped", "no mapper spec recorded")
        return
    base_kernel = kernel if kernel is not None else get_default_kernel()
    for other in KERNELS:
        if other == base_kernel:
            continue
        prev = set_default_kernel(other)
        try:
            remapped = _map_with_spec(s, mapper_spec, seed)
        finally:
            set_default_kernel(prev)
        if not np.array_equal(remapped.assignment, s.assignment):
            diff = np.flatnonzero(remapped.assignment != s.assignment)
            s.record(
                "kernel-differential", "violated",
                f"kernel {other!r} assignment differs from {base_kernel!r} "
                f"at {len(diff)} tasks (first: {diff[:8].tolist()})",
            )
            return
    s.record("kernel-differential", "ok")


def _check_spec_rebuild(s: _Session, mapper_spec: str | None,
                        seed: int | None) -> None:
    from repro.engine.specs import canonical_mapper_spec

    if mapper_spec is None:
        s.record("spec-rebuild-differential", "skipped", "no mapper spec recorded")
        return
    canonical = canonical_mapper_spec(mapper_spec)
    remapped = _map_with_spec(s, canonical, seed)
    if not np.array_equal(remapped.assignment, s.assignment):
        diff = np.flatnonzero(remapped.assignment != s.assignment)
        s.record(
            "spec-rebuild-differential", "violated",
            f"mapper rebuilt from canonical spec {canonical!r} differs at "
            f"{len(diff)} tasks (first: {diff[:8].tolist()})",
        )
        return
    s.record("spec-rebuild-differential", "ok")


def _check_subtopology_distances(s: _Session) -> None:
    from repro.topology.subset import SubTopology

    topo = s.topology
    if not isinstance(topo, SubTopology):
        s.record("subtopology-distances", "skipped", "topology is not a SubTopology")
        return
    parent = topo.parent
    parent_nodes = topo.parent_nodes
    # Recompute through the parent's distance_matrix — a different code path
    # than SubTopology.distance_row's per-row gather.
    mat = parent.distance_matrix(np.float64)
    nodes = range(topo.num_nodes)
    if topo.num_nodes > _SUBTOPOLOGY_SAMPLE:
        nodes = np.linspace(
            0, topo.num_nodes - 1, _SUBTOPOLOGY_SAMPLE, dtype=np.int64
        ).tolist()
    for local in nodes:
        expected = mat[parent_nodes[int(local)]][parent_nodes]
        got = topo.distance_row(int(local)).astype(np.float64)
        if not np.array_equal(got, expected):
            s.record(
                "subtopology-distances", "violated",
                f"SubTopology.distance_row({int(local)}) disagrees with the "
                f"parent metric recomputation",
            )
            return
    s.record("subtopology-distances", "ok")


# --------------------------------------------------------------- metamorphic
def _metamorphic_guard(s: _Session, invariant: str) -> bool:
    if s.graph.num_tasks > _METAMORPHIC_TASK_LIMIT:
        s.record(invariant, "skipped",
                 f"graph has {s.graph.num_tasks} tasks "
                 f"(> {_METAMORPHIC_TASK_LIMIT} metamorphic limit)")
        return False
    return True


def _check_relabel_invariance(s: _Session, seed: int | None) -> None:
    from repro.mapping.metrics import hop_bytes

    if not _metamorphic_guard(s, "relabel-invariance"):
        return
    rng = np.random.default_rng(0 if seed is None else seed)
    perm = rng.permutation(s.graph.num_tasks)
    relabeled = s.graph.relabel(perm)
    permuted = np.empty_like(s.assignment)
    permuted[perm] = s.assignment
    hb = s.hop_bytes
    if hb is None:
        hb = hop_bytes(s.graph, s.topology, s.assignment)
    hb2 = hop_bytes(relabeled, s.topology, permuted)
    if not _close(hb2, hb):
        s.record(
            "relabel-invariance", "violated",
            f"task relabeling changed hop_bytes: {hb!r} -> {hb2!r}",
        )
        return
    s.record("relabel-invariance", "ok")


def _check_scale_invariance(s: _Session) -> None:
    from repro.mapping.metrics import hop_bytes

    if not _metamorphic_guard(s, "scale-invariance"):
        return
    u, v, w = s.graph.edge_arrays()
    doubled = TaskGraph(
        s.graph.num_tasks,
        zip(u.tolist(), v.tolist(), (w * 2.0).tolist()),
        s.graph.vertex_weights,
    )
    hb = s.hop_bytes
    if hb is None:
        hb = hop_bytes(s.graph, s.topology, s.assignment)
    hb2 = hop_bytes(doubled, s.topology, s.assignment)
    # Doubling is exact in floating point, so so is the scaled metric.
    if hb2 != 2.0 * hb:
        s.record(
            "scale-invariance", "violated",
            f"doubling every edge weight gave hop_bytes {hb2!r}, "
            f"expected exactly {2.0 * hb!r}",
        )
        return
    s.record("scale-invariance", "ok")


def _check_torus_rotation(s: _Session) -> None:
    from repro.mapping.metrics import hop_bytes
    from repro.topology.torus import Torus

    topo = s.topology
    if type(topo) is not Torus:
        s.record("torus-rotation", "skipped", "topology is not a pristine torus")
        return
    coords = np.array(topo.coords_array())
    coords[:, 0] = (coords[:, 0] + 1) % topo.shape[0]
    rotated_ids = np.ravel_multi_index(tuple(coords.T), topo.shape)
    rotated = rotated_ids[s.assignment]
    hb = s.hop_bytes
    if hb is None:
        hb = hop_bytes(s.graph, s.topology, s.assignment)
    # The rotation is a distance-preserving automorphism and edge order is
    # unchanged, so the dot product is bit-identical.
    hb2 = hop_bytes(s.graph, topo, rotated)
    if hb2 != hb:
        s.record(
            "torus-rotation", "violated",
            f"axis-0 rotation changed hop_bytes: {hb!r} -> {hb2!r}",
        )
        return
    s.record("torus-rotation", "ok")


# -------------------------------------------------------------------- driver
def validate_mapping(
    graph: TaskGraph,
    topology: Topology,
    assignment: Sequence[int],
    *,
    level: str = "cheap",
    ctx=None,
    allowed: np.ndarray | None = None,
    mapper_spec: str | None = None,
    graph_spec: str | None = None,
    topology_spec: str | None = None,
    seed: int | None = None,
    kernel: str | None = None,
    metrics: dict | None = None,
    raise_on_violation: bool = True,
) -> ValidationReport:
    """Run the invariant tier ``level`` against one produced assignment.

    ``cheap`` runs the structural invariants and the metrics-consistency
    oracle (a handful of O(edges) gathers). ``full`` additionally re-runs
    the mapper under the other kernel and from its canonical spec, checks
    link-load conservation, the SubTopology distance oracle, and the
    metamorphic properties. ``off`` returns an empty report.

    When ``raise_on_violation`` (the default) any violation raises a
    :class:`~repro.exceptions.ValidationError` carrying the invariant name,
    the spec context, and — for fully spec-described runs — the exact
    ``repro-validate`` replay command. Pass ``False`` to inspect the report
    instead (the CLI's violation-report path).
    """
    if level not in VALIDATION_LEVELS:
        raise SpecError(
            f"validation level must be one of {VALIDATION_LEVELS}, got {level!r}"
        )
    context = {
        "graph": graph_spec,
        "topology": topology_spec
        or getattr(topology, "name", type(topology).__name__),
        "mapper": mapper_spec,
        "seed": seed,
        "kernel": kernel,
    }
    report = ValidationReport(
        level=level,
        context=context,
        replay=replay_command(
            graph_spec, topology_spec, mapper_spec, seed, kernel, level
        ),
    )
    if level == "off":
        return report

    if ctx is None:
        from repro.mapping.context import context_for

        ctx = context_for(graph, topology)
    arr = np.asarray(assignment)
    s = _Session(graph, topology, arr, report, ctx, allowed)

    _check_bounds(s)
    if report.violations():
        # Every later check indexes with the assignment; a bounds violation
        # would turn them into index errors instead of diagnostics.
        return _finish(report, raise_on_violation)
    arr = s.assignment = arr.astype(np.int64, copy=False)

    _check_injectivity(s)
    _check_allowed_mask(s)
    _check_additivity(s)
    _check_lower_bound(s)
    _check_metrics_consistency(s, metrics)

    if level == "full":
        _check_link_load_conservation(s)
        _check_kernel_differential(s, mapper_spec, seed, kernel)
        _check_spec_rebuild(s, mapper_spec, seed)
        _check_subtopology_distances(s)
        _check_relabel_invariance(s, seed)
        _check_scale_invariance(s)
        _check_torus_rotation(s)

    return _finish(report, raise_on_violation)


def _finish(report: ValidationReport, raise_on_violation: bool) -> ValidationReport:
    violations = report.violations()
    if violations and raise_on_violation:
        first = violations[0]
        raise ValidationError(
            first.invariant,
            first.detail
            + (f" (+{len(violations) - 1} more violated invariant(s): "
               f"{[v.invariant for v in violations[1:]]})"
               if len(violations) > 1 else ""),
            spec=report.context,
            replay=report.replay,
            details={"violations": [v.to_dict() for v in violations]},
        )
    return report
