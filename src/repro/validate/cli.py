"""``repro-validate`` — run the differential validation suite.

Two modes:

* **golden-corpus mode** — replay every pinned triple in a corpus directory
  (default ``tests/golden``) at the requested validation level, under one or
  both kernels, and fail on any invariant violation or golden drift::

      repro-validate --golden tests/golden --validate full --kernel both
      repro-validate --regenerate --golden tests/golden   # intentional only

* **single-run mode** — validate one spec-described mapping (this is the
  replay command every :class:`~repro.exceptions.ValidationError` embeds)::

      repro-validate --graph mesh2d:8x8 --topology torus:8x8 \
                     --mapper TopoLB --seed 0 --validate full

``--report`` writes a ``repro-validate-report-v1`` JSON artifact with one
record per (file, kernel) pass including the full violation text — CI
uploads it so a red ``validate-smoke`` job ships its own diagnosis.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.exceptions import ReproError, ValidationError

__all__ = ["main", "build_parser"]

REPORT_FORMAT = "repro-validate-report-v1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Differential validation of mappings and metrics "
                    "(invariants, kernel/spec oracles, golden corpus)",
    )
    parser.add_argument("--golden", type=Path, default=None,
                        help="golden corpus directory or single file "
                             "(default: tests/golden when no --graph given)")
    parser.add_argument("--validate", choices=("cheap", "full"),
                        default="full", dest="level",
                        help="invariant tier to enforce (default: full)")
    parser.add_argument("--kernel",
                        choices=("vectorized", "reference", "incremental",
                                 "both", "all"),
                        default=None,
                        help="kernel(s) to replay under (default: process "
                             "default; 'both' runs each golden under "
                             "vectorized+reference, 'all' under every "
                             "kernel)")
    parser.add_argument("--graph", help="graph spec for single-run mode, "
                                        "e.g. mesh2d:8x8;bytes=1024")
    parser.add_argument("--topology", help="topology spec, e.g. torus:8x8")
    parser.add_argument("--mapper", default="TopoLB",
                        help="mapper spec or strategy alias (single-run mode)")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument("--regenerate", action="store_true",
                        help="rewrite the golden corpus from current code "
                             "(intentional behaviour changes only)")
    parser.add_argument("--report", type=Path,
                        help="write a repro-validate-report-v1 JSON here")
    return parser


def _kernels(arg: str | None) -> list[str | None]:
    if arg == "both":
        return ["vectorized", "reference"]
    if arg == "all":
        from repro.mapping.kernels import KERNELS
        return list(KERNELS)
    return [arg]


def _run_single(args, records: list[dict]) -> int:
    from repro.engine import MappingEngine, MappingRequest

    status = 0
    for kernel in _kernels(args.kernel):
        label = kernel or "default-kernel"
        try:
            result = MappingEngine().run(MappingRequest(
                graph=args.graph, topology=args.topology, mapper=args.mapper,
                seed=args.seed, kernel=kernel, validate=args.level,
            ))
        except ValidationError as exc:
            print(f"FAIL [{label}] {exc}", file=sys.stderr)
            records.append({"target": "single-run", "kernel": label,
                            "status": "violated", "error": str(exc),
                            "invariant": exc.invariant, "replay": exc.replay})
            status = 1
            continue
        records.append({"target": "single-run", "kernel": label,
                        "status": "ok", "metrics": result.metrics})
        print(f"ok [{label}] {args.mapper} on {args.topology}: "
              f"hop_bytes={result.metrics['hop_bytes']:g} "
              f"hops_per_byte={result.metrics['hops_per_byte']:g}")
    return status


def _run_corpus(args, records: list[dict]) -> int:
    from repro.validate.golden import check_golden, iter_golden_paths

    root = args.golden if args.golden is not None else Path("tests/golden")
    paths = iter_golden_paths(root)
    if not paths:
        print(f"error: no golden files under {root}", file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        for kernel in _kernels(args.kernel):
            label = kernel or "default-kernel"
            try:
                check_golden(path, level=args.level, kernel=kernel)
            except ValidationError as exc:
                print(f"FAIL {path} [{label}] {exc}", file=sys.stderr)
                records.append({"target": str(path), "kernel": label,
                                "status": "violated", "error": str(exc),
                                "invariant": exc.invariant,
                                "replay": exc.replay})
                status = 1
                continue
            records.append({"target": str(path), "kernel": label,
                            "status": "ok"})
            print(f"ok {path} [{label}]")
    return status


def _regenerate(args) -> int:
    from repro.validate.golden import iter_golden_paths, load_golden, write_golden

    root = args.golden if args.golden is not None else Path("tests/golden")
    paths = iter_golden_paths(root)
    if not paths:
        print(f"error: no golden files under {root}", file=sys.stderr)
        return 2
    for path in paths:
        doc = load_golden(path)
        write_golden(path, graph=doc["graph"], topology=doc["topology"],
                     mapper=doc["mapper"], seed=doc["seed"],
                     flow_metrics=doc.get("flow_metrics", False),
                     netsim=doc.get("netsim"))
        print(f"regenerated {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code (1 on any violation)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.graph and args.golden:
        parser.error("--graph (single-run mode) and --golden are exclusive")
    if args.graph and not args.topology:
        parser.error("single-run mode needs both --graph and --topology")
    if args.regenerate and args.graph:
        parser.error("--regenerate applies to the golden corpus only")

    records: list[dict] = []
    try:
        if args.regenerate:
            return _regenerate(args)
        if args.graph:
            status = _run_single(args, records)
        else:
            status = _run_corpus(args, records)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    violations = sum(1 for r in records if r["status"] != "ok")
    print(f"{len(records) - violations}/{len(records)} validation passes ok "
          f"(level={args.level})")
    if args.report is not None:
        args.report.write_text(json.dumps({
            "format": REPORT_FORMAT,
            "level": args.level,
            "passes": len(records) - violations,
            "violations": violations,
            "records": records,
        }, indent=2) + "\n")
        print(f"report written to {args.report}")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
