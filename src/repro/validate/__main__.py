"""``python -m repro.validate`` — alias for the ``repro-validate`` CLI."""

from repro.validate.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
