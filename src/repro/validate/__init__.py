"""repro.validate — differential validation of mappings and metrics.

The paper's entire argument rests on one number (hop-bytes, Section 3), and
the repo now computes it along four independent paths: the scalar reference
kernels, the vectorized kernels, the shared
:meth:`~repro.mapping.context.MappingContext.metrics` block, and the
per-object :attr:`~repro.mapping.base.Mapping.hop_bytes`. This package
cross-checks them continuously — the differential/metamorphic oracle layer
SimGrid-class simulators use to keep metric implementations honest:

* **invariant checkers** (``cheap`` tier) — structural facts every mapping
  must satisfy: assignment bounds, injectivity when ``n <= p``, allowed-mask
  respect on degraded machines, the per-task additivity identity
  ``per_task_hop_bytes.sum()/2 == hop_bytes``, and
  ``hop_bytes >= hop_bytes_lower_bound``;
* **differential oracles** (``full`` tier) — independent implementations
  must agree bit-for-bit: vectorized vs ``reference`` kernels, spec-built vs
  canonically-rebuilt mappers, ``metrics_block`` vs the standalone
  :mod:`repro.mapping.metrics` functions, :class:`~repro.topology.SubTopology`
  distances vs a parent-metric recomputation, and per-link loads summing to
  hop-bytes on route-capable machines;
* **metamorphic properties** (``full`` tier) — transformations with known
  effect on the metric: task relabeling permutes assignments but preserves
  hop-bytes, doubling every edge weight exactly doubles hop-bytes, and a
  torus axis rotation leaves the metric bit-identical;
* a **golden-regression corpus** (``tests/golden/*.json``) of small
  graph x topology x mapper triples with exact pinned metric blocks, checked
  by the ``repro-validate`` CLI and the ``validate-smoke`` CI job.

Every violation raises a structured
:class:`~repro.exceptions.ValidationError` naming the invariant, the spec
context, and a replayable ``repro-validate`` command. The engine enforces a
level per request: ``MappingRequest(validate="off"|"cheap"|"full")``.

See ``docs/VALIDATION.md`` for the tier definitions and the golden format.
"""

from repro.exceptions import ValidationError
from repro.validate.core import (
    VALIDATION_LEVELS,
    CheckResult,
    ValidationReport,
    replay_command,
    validate_mapping,
)
from repro.validate.golden import (
    GOLDEN_FORMAT,
    check_golden,
    iter_golden_paths,
    load_golden,
    write_golden,
)

__all__ = [
    "ValidationError",
    "VALIDATION_LEVELS",
    "CheckResult",
    "ValidationReport",
    "replay_command",
    "validate_mapping",
    "GOLDEN_FORMAT",
    "check_golden",
    "iter_golden_paths",
    "load_golden",
    "write_golden",
]
