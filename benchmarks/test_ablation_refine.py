"""Ablation: RefineTopoLB sweep budget vs marginal hop-byte gain.

Most of the refiner's improvement arrives in the first sweep or two —
quantifying this justifies the small default sweep budget.
"""

from __future__ import annotations

import pytest

from repro.mapping import RandomMapper, RefineTopoLB, TopoLB
from repro.taskgraph import leanmd_taskgraph
from repro.taskgraph.coalesce import coalesce
from repro.partition import MultilevelPartitioner
from repro.topology import Torus


def _quotient(p=64):
    graph = leanmd_taskgraph(p)
    groups = MultilevelPartitioner(seed=0).partition(graph, p)
    return coalesce(graph, groups, p)


@pytest.mark.parametrize("sweeps", [1, 2, 5, 10])
def test_refine_sweep_budget(benchmark, sweeps):
    topo = Torus((8, 8))
    quotient = _quotient(64)
    base = TopoLB().map(quotient, topo)

    refined = benchmark.pedantic(
        RefineTopoLB(max_sweeps=sweeps, seed=0).refine, args=(base,),
        rounds=1, iterations=1,
    )
    gain = 100.0 * (1 - refined.hop_bytes / base.hop_bytes)
    print(f"\nsweeps={sweeps}: hop-bytes gain over TopoLB = {gain:.1f}%")
    assert refined.hop_bytes <= base.hop_bytes + 1e-9


def test_diminishing_returns(run_once):
    def measure():
        topo = Torus((8, 8))
        quotient = _quotient(64)
        start = RandomMapper(seed=0).map(quotient, topo)
        hb = {0: start.hop_bytes}
        for sweeps in (1, 10):
            hb[sweeps] = RefineTopoLB(max_sweeps=sweeps, seed=0).refine(start).hop_bytes
        return hb

    hb = run_once(measure)
    first_gain = hb[0] - hb[1]
    rest_gain = hb[1] - hb[10]
    print(f"\nsweep 1 gain {first_gain:.3g}, sweeps 2-10 gain {rest_gain:.3g}")
    assert first_gain >= rest_gain  # most value in the first sweep
