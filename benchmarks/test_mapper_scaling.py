"""Micro-benchmarks: mapper wall-clock scaling (the Section 4.4 complexity claims).

TopoCentLB is O(p |Et|) with heap selection; TopoLB (2nd order) is
O(p |Et|) amortized with the fest-table maintenance. These benches give the
empirical curve; the paper observes "closer to O(p^2)" for constant-degree
task graphs.
"""

from __future__ import annotations

import pytest

from repro.mapping import RandomMapper, RefineTopoLB, TopoCentLB, TopoLB
from repro.partition import MultilevelPartitioner
from repro.taskgraph import leanmd_taskgraph, mesh2d_pattern
from repro.topology import Torus

SIDES = [8, 16, 24]


@pytest.mark.parametrize("side", SIDES)
def test_topolb_scaling(benchmark, side):
    topo = Torus((side, side))
    graph = mesh2d_pattern(side, side)
    mapping = benchmark(TopoLB().map, graph, topo)
    assert mapping.is_bijection()


@pytest.mark.parametrize("side", SIDES)
def test_topocentlb_scaling(benchmark, side):
    topo = Torus((side, side))
    graph = mesh2d_pattern(side, side)
    mapping = benchmark(TopoCentLB().map, graph, topo)
    assert mapping.is_bijection()


@pytest.mark.parametrize("side", [8, 16])
def test_refine_scaling(benchmark, side):
    topo = Torus((side, side))
    graph = mesh2d_pattern(side, side)
    base = RandomMapper(seed=0).map(graph, topo)
    refiner = RefineTopoLB(max_sweeps=2, seed=0)
    refined = benchmark(refiner.refine, base)
    assert refined.hop_bytes <= base.hop_bytes + 1e-9


def test_multilevel_partitioner_leanmd(benchmark):
    graph = leanmd_taskgraph(64)
    groups = benchmark(MultilevelPartitioner(seed=0).partition, graph, 64)
    assert len(set(groups.tolist())) == 64


def test_distance_matrix_construction(benchmark):
    def build():
        return Torus((16, 16, 4)).distance_matrix()

    mat = benchmark(build)
    assert mat.shape == (1024, 1024)
