"""Benchmark: Figures 5/6 — LeanMD on 2D- and 3D-tori."""

from __future__ import annotations

from repro.experiments import fig05_06


def test_fig05_leanmd_2d_tori(run_once):
    result = run_once(fig05_06.run, quick=True, ndim=2)
    print()
    print(result.to_text())
    _check_shape(result)


def test_fig06_leanmd_3d_tori(run_once):
    result = run_once(fig05_06.run, quick=True, ndim=3)
    print()
    print(result.to_text())
    _check_shape(result)


def _check_shape(result):
    for row in result.rows:
        # Ordering: topo-aware strategies below random; refine never hurts.
        assert row["topolb"] < row["random"]
        assert row["topocentlb"] < row["random"]
        assert row["refine_topolb"] <= row["topolb"] + 1e-9
    # The mapper's win grows once the quotient graph turns sparse (paper:
    # 15% at p=18's ratio-180 regime vs ~34% at large p).
    gains = result.column("topolb_vs_random_pct")
    assert gains[-1] > gains[0]
    assert gains[-1] > 25.0
