"""Benchmark: Figures 3/4 — 2D-mesh pattern on 3D-torus, hops per byte."""

from __future__ import annotations

import pytest

from repro.experiments import fig03_04


def test_fig03_04(run_once):
    result = run_once(fig03_04.run, quick=True)
    print()
    print(result.to_text())

    rows = {r["processors"]: r for r in result.rows}
    # The (8,8) mesh embeds into the (4,4,4) torus: optimum found.
    assert rows[64]["topolb"] == pytest.approx(1.0, abs=0.05)
    for row in result.rows:
        assert row["random"] == pytest.approx(row["E_random"], rel=0.15)
        assert row["topolb"] <= row["topocentlb"]
        assert row["topolb"] < 2.5  # "small values" regime of the paper
