"""Serving-path benchmark: cache-hit fast path vs cold compute.

The tentpole claim of the mapping service (ROADMAP item 2): under the
duplicate-heavy traffic the service is built for (>= 90% repeats), a cache
hit is served at least an order of magnitude faster than a cold compute of
the same request. The load generator drives 200 requests at a self-hosted
daemon, classifies every response hit/cold from the ``cached`` flag, and
the profile lands in ``BENCH_service_loadgen.json``.

Latencies are wall-clock and machine-dependent, so unlike the DES
benchmarks the artifact is not pinned bit-exact: the live run and the
recorded artifact must both clear the same qualitative bars (hit ratio
matches the offered duplicate fraction; hit p50 >= 10x faster than cold
p50). Re-record with ``REPRO_RECORD_BENCH=1``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import obs
from repro.service.loadgen import run_loadgen

ARTIFACT = Path(__file__).parent / "BENCH_service_loadgen.json"

REQUESTS = 200
DUPLICATE = 0.9
MIN_SPEEDUP = 10.0


def _gate(counters: dict, origin: str) -> None:
    assert counters["loadgen.errors"] == 0, (
        f"{origin}: {counters['loadgen.errors']} requests failed"
    )
    assert counters["loadgen.served"] == REQUESTS
    # Uniques lead the stream, so the hit ratio equals the duplicate
    # fraction exactly when driven sequentially.
    assert counters["loadgen.hit_ratio"] >= DUPLICATE - 0.01, (
        f"{origin}: hit ratio {counters['loadgen.hit_ratio']:.3f} below the "
        f"{DUPLICATE:.0%} duplicate traffic offered"
    )
    assert counters["loadgen.hit_speedup"] >= MIN_SPEEDUP, (
        f"{origin}: hit p50 {counters['loadgen.hit_p50_us']:.0f}us vs cold "
        f"p50 {counters['loadgen.miss_p50_us']:.0f}us is only "
        f"{counters['loadgen.hit_speedup']:.1f}x (< {MIN_SPEEDUP:.0f}x)"
    )


def test_hit_path_order_of_magnitude_faster(run_once):
    profile = run_once(
        run_loadgen, requests=REQUESTS, duplicate=DUPLICATE, seed=0, jobs=1
    )
    obs.validate_profile(profile)
    _gate(profile["counters"], "live run")

    if os.environ.get("REPRO_RECORD_BENCH"):
        obs.save_profile(profile, ARTIFACT)

    # The recorded artifact must tell the same story as the live run.
    pinned = json.loads(ARTIFACT.read_text())
    obs.validate_profile(pinned)
    assert pinned["context"]["duplicate_fraction"] == DUPLICATE
    _gate(pinned["counters"], str(ARTIFACT.name))
