"""Benchmark: Figures 7/8 — average message latency vs link bandwidth."""

from __future__ import annotations

from repro.experiments import fig07_08


def test_fig07_08(run_once):
    result = run_once(fig07_08.run, quick=True)
    print()
    print(result.to_text())

    for row in result.rows:
        assert row["TopoLB_latency_us"] < row["TopoCentLB_latency_us"]
        assert row["TopoCentLB_latency_us"] < row["GreedyLB_latency_us"]
    # Congestion blow-up: random's absolute latency increase as bandwidth
    # drops dwarfs TopoLB's.
    low, high = result.rows[0], result.rows[-1]
    assert low["GreedyLB_latency_us"] - high["GreedyLB_latency_us"] > 2 * (
        low["TopoLB_latency_us"] - high["TopoLB_latency_us"]
    )
