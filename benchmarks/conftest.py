"""Benchmark-suite configuration.

Every paper table/figure has one benchmark that (a) regenerates the artifact
via its experiment harness, (b) prints the same rows/series the paper
reports, and (c) asserts the paper's qualitative shape. Heavy experiment
runs use ``benchmark.pedantic`` with one round so the suite stays minutes-
scale; micro-benchmarks (mapper scaling) use normal rounds.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark a heavy callable exactly once and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
