"""Ablation: job allocation shape on a shared machine.

Large machines run many jobs at once; the scheduler decides *which*
processors each job gets before any mapper runs. Two jobs on one torus:

* **compact** allocations — each job gets a contiguous half (the
  SubTopology facility), mapped internally with TopoLB;
* **interleaved** allocations — jobs get alternating columns (checkerboard
  scheduling), so even a perfect mapper must send every message across
  processors of the other job, and the jobs' traffic shares links.

Both jobs then run *simultaneously* through one network simulator; the
compact allocation wins on completion time because (a) intra-job messages
travel fewer hops and (b) inter-job link sharing disappears.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import Mapping, TopoLB
from repro.netsim import IterativeApplication, NetworkSimulator
from repro.taskgraph import mesh2d_pattern
from repro.topology import SubTopology, Torus


def _run_two_jobs(allocations: list[np.ndarray], bandwidth: float = 150.0):
    """Map one 4x8 Jacobi job into each allocation; co-run; return times."""
    machine = Torus((8, 8))
    sim = NetworkSimulator(machine, bandwidth=bandwidth, alpha=0.1)
    apps = []
    for alloc in allocations:
        job = mesh2d_pattern(4, 8)
        sub = SubTopology(machine, alloc)
        local = TopoLB().map(job, sub)
        global_assign = sub.parent_nodes[local.assignment]
        mapping = Mapping(job, machine, global_assign)
        app = IterativeApplication(mapping, sim, iterations=20,
                                   message_bytes=2048.0, compute_time=2.0)
        app.start()
        apps.append(app)
    sim.run()
    return [app.result().total_time for app in apps]


def _compact_allocations() -> list[np.ndarray]:
    machine = Torus((8, 8))
    left = [machine.index((r, c)) for r in range(8) for c in range(4)]
    right = [machine.index((r, c)) for r in range(8) for c in range(4, 8)]
    return [np.array(left), np.array(right)]


def _interleaved_allocations() -> list[np.ndarray]:
    machine = Torus((8, 8))
    even = [machine.index((r, c)) for r in range(8) for c in range(0, 8, 2)]
    odd = [machine.index((r, c)) for r in range(8) for c in range(1, 8, 2)]
    return [np.array(even), np.array(odd)]


@pytest.mark.parametrize(
    "shape,factory",
    [("compact", _compact_allocations), ("interleaved", _interleaved_allocations)],
    ids=["compact", "interleaved"],
)
def test_allocation_shape(benchmark, shape, factory):
    times = benchmark.pedantic(_run_two_jobs, args=(factory(),),
                               rounds=1, iterations=1)
    print(f"\n{shape}: job completion times {[f'{t:.0f}us' for t in times]}")
    assert all(t > 0 for t in times)


def test_compact_beats_interleaved(run_once):
    def measure():
        return {
            "compact": max(_run_two_jobs(_compact_allocations())),
            "interleaved": max(_run_two_jobs(_interleaved_allocations())),
        }

    out = run_once(measure)
    print(f"\nslowest job: compact {out['compact']:.0f}us, "
          f"interleaved {out['interleaved']:.0f}us")
    assert out["compact"] < out["interleaved"]
