"""Multilevel mapper at machine scale: 10^5+ tasks onto a 4096-node torus.

The direct dense mappers stop at a few thousand processors (p x p tables);
the multilevel mapper reaches the paper's "large parallel machines" regime.
This bench maps a 48^3 Jacobi stencil (110592 tasks) onto a 16x16x16 torus,
asserts the CI time budget and the quality bar (>= 2x better hop-bytes than
a balanced random placement), and checks the result against the recorded
``BENCH_multilevel_torus16x16x16.json`` artifact. Set ``REPRO_RECORD_BENCH=1``
to re-record the artifact after an intentional behaviour change.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import mapper_from_spec
from repro.mapping.metrics import hop_bytes, metrics_block
from repro.taskgraph import mesh3d_pattern
from repro.topology import Torus
from repro.validate import validate_mapping

SIDE = 48  # 48^3 = 110592 tasks — past the 10^5 bar
SHAPE = (16, 16, 16)  # 4096 processors
STRATEGY = "multilevel:inner=topolb;levels=auto"
TIME_BUDGET_S = 60.0
MIN_RANDOM_RATIO = 2.0
ARTIFACT = Path(__file__).parent / "BENCH_multilevel_torus16x16x16.json"


def _balanced_random_hop_bytes(graph, topo, seeds=(0, 1, 2)) -> float:
    """Mean hop-bytes of balanced random many-to-one placements (shuffle the
    tasks, deal them round-robin into the processors)."""
    values = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        perm = rng.permutation(graph.num_tasks)
        assignment = np.empty(graph.num_tasks, dtype=np.int64)
        assignment[perm] = np.arange(graph.num_tasks) % topo.num_nodes
        values.append(hop_bytes(graph, topo, assignment))
    return float(np.mean(values))


@pytest.fixture(scope="module")
def instance():
    return mesh3d_pattern(SIDE, SIDE, SIDE, message_bytes=1024), Torus(SHAPE)


def test_multilevel_100k_tasks(run_once, instance):
    graph, topo = instance
    mapper = mapper_from_spec(STRATEGY, seed=0)

    start = time.perf_counter()
    mapping = run_once(mapper.map, graph, topo)
    elapsed = time.perf_counter() - start
    assert elapsed < TIME_BUDGET_S, f"multilevel took {elapsed:.1f}s"

    validate_mapping(graph, topo, mapping.assignment, level="cheap")
    metrics = metrics_block(graph, topo, mapping.assignment)
    random_hb = _balanced_random_hop_bytes(graph, topo)
    ratio = random_hb / metrics["hop_bytes"]
    assert ratio >= MIN_RANDOM_RATIO, (
        f"multilevel only {ratio:.2f}x better than balanced random"
    )

    record = {
        "format": "repro-bench-v1",
        "taskgraph": f"mesh3d:{SIDE}x{SIDE}x{SIDE};bytes=1024",
        "topology": "torus:16x16x16",
        "strategy": STRATEGY,
        "seed": 0,
        "num_tasks": graph.num_tasks,
        "num_processors": topo.num_nodes,
        "hop_bytes": metrics["hop_bytes"],
        "hops_per_byte": metrics["hops_per_byte"],
        "load_imbalance": metrics["load_imbalance"],
        "random_hop_bytes_mean": random_hb,
        "random_ratio": ratio,
        "elapsed_seconds": round(elapsed, 2),
        "time_budget_seconds": TIME_BUDGET_S,
        "validated": "cheap",
    }
    if os.environ.get("REPRO_RECORD_BENCH"):
        ARTIFACT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    # Quality is deterministic (seeded): the run must reproduce the recorded
    # artifact exactly; only wall-clock may differ across hosts.
    pinned = json.loads(ARTIFACT.read_text())
    for key in ("hop_bytes", "hops_per_byte", "random_hop_bytes_mean",
                "num_tasks", "num_processors"):
        assert record[key] == pinned[key], (
            f"{key}: got {record[key]!r}, artifact pins {pinned[key]!r} — "
            "re-record with REPRO_RECORD_BENCH=1 if the change is intentional"
        )


def test_direct_topolb_expected_skip(instance):
    """Direct TopoLB is out of scope at this scale — it builds O(n*p) cost
    tables (~3.6 GB here, with O(n*p) update sweeps on top). Documented as
    an explicit skip so the gap the multilevel mapper fills stays visible in
    the bench report."""
    graph, topo = instance
    cells = graph.num_tasks * topo.num_nodes
    budget = 10**8  # ~100x the largest direct run the suite exercises
    if cells > budget:
        pytest.skip(
            f"direct TopoLB needs ~{cells * 8 / 1e9:.0f} GB of cost tables "
            f"at n={graph.num_tasks}, p={topo.num_nodes}; use "
            f"'{STRATEGY}' instead"
        )
    pytest.fail("instance unexpectedly small enough for direct TopoLB")
