"""Ablation: the objective function itself — cardinality vs hop-bytes.

Bokhari (1981) optimized *cardinality* (edges landing on machine links);
the paper optimizes *hop-bytes*. On uniform-weight stencils the two agree;
on weight-skewed instances the cardinality objective is blind to where the
heavy bytes go — which is precisely the historical motivation for
hop-bytes. This bench measures both metrics under both optimizers, plus
the GA's seeded-vs-random initialization (Orduña et al.'s 'seed' idea).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import (
    BokhariMapper,
    GeneticMapper,
    RandomMapper,
    TopoLB,
    cardinality,
)
from repro.taskgraph import TaskGraph, mesh2d_pattern, random_taskgraph
from repro.topology import Torus


def _skewed_instance():
    """Geometric weights: a few pairs dominate the traffic."""
    rng = np.random.default_rng(7)
    g = random_taskgraph(36, edge_prob=0.15, seed=7)
    edges = [(a, b, w * float(rng.choice([1, 1, 1, 50]))) for a, b, w in g.edges()]
    return TaskGraph(36, edges), Torus((6, 6))


@pytest.mark.parametrize("mapper_name", ["bokhari", "topolb"])
def test_objective_choice(benchmark, mapper_name):
    graph, topo = _skewed_instance()
    mapper = BokhariMapper(seed=0) if mapper_name == "bokhari" else TopoLB()
    mapping = benchmark.pedantic(mapper.map, args=(graph, topo),
                                 rounds=1, iterations=1)
    print(f"\n{mapper_name}: hop-bytes={mapping.hop_bytes:.4g}, "
          f"cardinality={cardinality(mapping)}/{graph.num_edges}")


def test_hop_bytes_objective_wins_on_skewed_weights(run_once):
    def measure():
        graph, topo = _skewed_instance()
        out = {}
        for name, mapper in (("bokhari", BokhariMapper(seed=0)),
                             ("topolb", TopoLB()),
                             ("random", RandomMapper(seed=0))):
            mapping = mapper.map(graph, topo)
            out[name] = (mapping.hop_bytes, cardinality(mapping))
        return out

    out = run_once(measure)
    print("\n" + "\n".join(f"{k}: HB={hb:.4g} card={c}" for k, (hb, c) in out.items()))
    # Both structured mappers beat random on their own metric...
    assert out["topolb"][0] < out["random"][0]
    assert out["bokhari"][1] > out["random"][1]
    # ...but hop-bytes is what contention follows, and TopoLB wins it.
    assert out["topolb"][0] < out["bokhari"][0]


def test_seeded_ga_converges_faster(run_once):
    def measure():
        topo = Torus((6, 6))
        graph = mesh2d_pattern(6, 6)
        out = {}
        for name, mapper in (
            ("random-init", GeneticMapper(generations=40, seed=0)),
            ("seeded-init", GeneticMapper(generations=40, seed=0,
                                          seed_mapper=TopoLB())),
        ):
            out[name] = mapper.map(graph, topo).hops_per_byte
        return out

    out = run_once(measure)
    print(f"\nGA hops/byte: random-init {out['random-init']:.3f}, "
          f"seeded-init {out['seeded-init']:.3f}")
    assert out["seeded-init"] <= out["random-init"]
