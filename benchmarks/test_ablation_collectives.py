"""Ablation: topology-aware vs oblivious collective trees.

Reductions/broadcasts (LeanMD's manager traffic) pay the same price for
topology-obliviousness as point-to-point mapping does: a binomial tree's
rank-order edges span many physical hops and contend on shared links, while
a BFS tree's edges are all single hops. Same lesson, runtime level.
"""

from __future__ import annotations

import pytest

from repro.netsim import NetworkSimulator, bfs_tree, binomial_tree, simulate_allreduce
from repro.topology import Torus

TREES = {"bfs": bfs_tree, "binomial": binomial_tree}


@pytest.mark.parametrize("tree_name", sorted(TREES))
def test_allreduce_tree(benchmark, tree_name):
    topo = Torus((8, 8))
    tree = TREES[tree_name](topo, 0)

    def run():
        sim = NetworkSimulator(topo, bandwidth=50.0, alpha=0.2)
        return simulate_allreduce(sim, 0, 4096.0, tree=tree)

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{tree_name} allreduce on {topo.name}: {t:.1f}us")


def test_aware_tree_wins(run_once):
    def measure():
        topo = Torus((8, 8))
        out = {}
        for name, fn in TREES.items():
            sim = NetworkSimulator(topo, bandwidth=50.0, alpha=0.2)
            out[name] = simulate_allreduce(sim, 0, 4096.0, tree=fn(topo, 0))
        return out

    out = run_once(measure)
    print(f"\nallreduce: bfs {out['bfs']:.1f}us vs binomial {out['binomial']:.1f}us")
    assert out["bfs"] < out["binomial"]
