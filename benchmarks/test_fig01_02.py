"""Benchmark: Figures 1/2 — 2D-mesh pattern on 2D-torus, hops per byte."""

from __future__ import annotations

import pytest

from repro.experiments import fig01_02


def test_fig01_02(run_once):
    result = run_once(fig01_02.run, quick=True)
    print()
    print(result.to_text())

    for row in result.rows:
        # Random placement tracks sqrt(p)/2.
        assert row["random"] == pytest.approx(row["E_random"], rel=0.15)
        # TopoLB produces an (almost) optimal mapping.
        assert row["topolb"] == pytest.approx(1.0, abs=0.05)
        # TopoLB beats TopoCentLB at every point; both far below random.
        assert row["topolb"] <= row["topocentlb"]
        assert row["topocentlb"] < row["random"] / 2
