"""Ablation: TopoLB's task-selection rule (the Section 4.1 intuition).

The paper's distinctive design choice is *criticality-gain* selection: pick
the task that would lose the most if deferred (``FAvg - FMin``), not the
cheapest or chattiest one. This bench swaps the rule while holding the rest
of the algorithm fixed, across structured and irregular instances.
"""

from __future__ import annotations

import pytest

from repro.mapping import TopoLB
from repro.taskgraph import leanmd_taskgraph, mesh2d_pattern, random_taskgraph
from repro.taskgraph.coalesce import coalesce
from repro.partition.multilevel import MultilevelPartitioner
from repro.topology import Torus

RULES = ("gain", "max_cost", "volume")


def _instances():
    out = [
        ("jacobi16/torus", mesh2d_pattern(16, 16), Torus((16, 16))),
        ("random64/torus", random_taskgraph(64, edge_prob=0.12, seed=1), Torus((8, 8))),
    ]
    graph = leanmd_taskgraph(64)
    groups = MultilevelPartitioner(seed=0).partition(graph, 64)
    out.append(("leanmd64/torus", coalesce(graph, groups, 64), Torus((8, 8))))
    return out


@pytest.mark.parametrize("rule", RULES)
def test_selection_rule(benchmark, rule):
    def run_all():
        return {
            name: TopoLB(selection=rule).map(g, topo).hops_per_byte
            for name, g, topo in _instances()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, hpb in results.items():
        print(f"{rule:>9} {name}: {hpb:.3f}")


def test_gain_rule_competitive_everywhere(run_once):
    def measure():
        table = {}
        for name, g, topo in _instances():
            table[name] = {
                rule: TopoLB(selection=rule).map(g, topo).hops_per_byte
                for rule in RULES
            }
        return table

    table = run_once(measure)
    print()
    for name, row in table.items():
        print(f"{name}: " + "  ".join(f"{r}={v:.3f}" for r, v in row.items()))
    # The paper's rule must never be the worst of the three by a wide margin
    # and must win (or tie) the structured stencil case outright.
    for name, row in table.items():
        worst = max(row.values())
        assert row["gain"] <= worst * 1.001 and row["gain"] < worst * 1.5
    assert table["jacobi16/torus"]["gain"] == min(table["jacobi16/torus"].values())
