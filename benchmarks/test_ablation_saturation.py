"""Ablation: open-loop saturation curves per traffic pattern.

The classic interconnect plot — latency vs offered load — for the traffic
classes that bracket the paper: ``neighbor`` is what an ideal stencil
mapping injects (1 hop/byte), ``uniform`` is what a random mapping injects
(E[d] hops/byte). The hop-heavy pattern saturates at a fraction of the
load, which *is* the paper's argument expressed in network terms.
"""

from __future__ import annotations

import pytest

from repro.netsim import NetworkSimulator, run_open_loop
from repro.topology import Torus

LOADS = (0.2, 0.5, 0.8)


@pytest.mark.parametrize("pattern", ["neighbor", "uniform", "transpose"])
def test_saturation_curve(benchmark, pattern):
    def sweep():
        out = []
        for load in LOADS:
            sim = NetworkSimulator(Torus((4, 4, 4)), bandwidth=100.0, alpha=0.1)
            r = run_open_loop(sim, pattern, load, message_bytes=256.0,
                              duration=400.0, seed=0)
            out.append((load, r.mean_latency, r.throughput))
        return out

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for load, lat, thr in curve:
        print(f"{pattern} load={load}: latency={lat:.2f}us throughput={thr:.3f}")
    lats = [lat for _, lat, _ in curve]
    assert lats == sorted(lats)  # latency monotone in load


def test_uniform_saturates_before_neighbor(run_once):
    def measure():
        out = {}
        for pattern in ("neighbor", "uniform"):
            sim = NetworkSimulator(Torus((4, 4, 4)), bandwidth=100.0, alpha=0.1)
            out[pattern] = run_open_loop(sim, pattern, 0.8,
                                         message_bytes=256.0, duration=400.0,
                                         seed=0).mean_latency
        return out

    out = run_once(measure)
    print(f"\nload 0.8: neighbor {out['neighbor']:.2f}us, "
          f"uniform {out['uniform']:.2f}us")
    assert out["uniform"] > 1.5 * out["neighbor"]
