"""Tail-latency benchmark: topology-aware mapping under finite buffers.

The robustness counterpart of the Figure 7/8 contention story: at equal
offered load (same Jacobi workload, same finite per-link buffers, same
retransmit schedule) a hop-byte-reducing mapping must beat a random one
where overload actually hurts — the p999 delivery latency and the buffer
drop count — not just on the mean. The buffered DES is seeded-deterministic,
so every number is pinned exactly in
``BENCH_netsim_tail_torus8x8.json``; re-record with
``REPRO_RECORD_BENCH=1`` after an intentional model change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.engine import mapper_from_spec
from repro.mapping.base import Mapping
from repro.netsim.appsim import IterativeApplication
from repro.netsim.simulator import NetworkSimulator
from repro.netsim.stats import tail_summary
from repro.taskgraph import mesh2d_pattern
from repro.topology import Torus

SIDE = 8
ITERATIONS = 3
ARTIFACT = Path(__file__).parent / "BENCH_netsim_tail_torus8x8.json"

SIM_KNOBS = dict(
    bandwidth=100.0,
    buffer_bytes=8192.0,
    overload_policy="drop",
    max_retries=64,
    retry_delay=2.0,
    retry_jitter=0.25,
    seed=0,
    unroutable_policy="drop",
    stall_window=1e6,
)


def _replay(mapping) -> dict:
    sim = NetworkSimulator(mapping.topology, **SIM_KNOBS)
    result = IterativeApplication(mapping, sim, iterations=ITERATIONS).run()
    tail = tail_summary(sim, iteration_times=result.iteration_times)
    return {
        "p50_us": tail["latency"]["p50"],
        "p99_us": tail["latency"]["p99"],
        "p999_us": tail["latency"]["p999"],
        "drops": tail["buffer_drops"],
        "retransmits": tail["retransmits"],
        "makespan_us": result.total_time,
    }


def test_tail_latency_topo_vs_random(benchmark):
    graph = mesh2d_pattern(SIDE, SIDE, message_bytes=4096.0)
    topo = Torus((SIDE, SIDE))
    rows = {}
    for name, spec in (("topolb", "topolb"),
                       ("refinetopolb", "refine:base=topolb")):
        rows[name] = _replay(mapper_from_spec(spec, seed=0).map(graph, topo))
    rng = np.random.default_rng(23)
    rows["random"] = _replay(
        Mapping(graph, topo, rng.permutation(topo.num_nodes))
    )
    benchmark.pedantic(
        _replay, args=(mapper_from_spec("topolb", seed=0).map(graph, topo),),
        rounds=1, iterations=1,
    )

    # The headline claims: equal offered load, topology-aware wins the tail
    # and the drop count.
    for name in ("topolb", "refinetopolb"):
        assert rows[name]["p999_us"] < rows["random"]["p999_us"], (
            f"{name} p999 {rows[name]['p999_us']} not below random "
            f"{rows['random']['p999_us']}"
        )
        assert rows[name]["drops"] < rows["random"]["drops"], (
            f"{name} drops {rows[name]['drops']} not below random "
            f"{rows['random']['drops']}"
        )

    record = {
        "format": "repro-bench-v1",
        "taskgraph": f"mesh2d:{SIDE}x{SIDE};bytes=4096",
        "topology": f"torus:{SIDE}x{SIDE}",
        "iterations": ITERATIONS,
        "sim_knobs": {k: v for k, v in SIM_KNOBS.items()},
        "mappers": rows,
    }
    if os.environ.get("REPRO_RECORD_BENCH"):
        ARTIFACT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    pinned = json.loads(ARTIFACT.read_text())
    for name, row in rows.items():
        for key, value in row.items():
            assert value == pinned["mappers"][name][key], (
                f"{name}.{key}: got {value!r}, artifact pins "
                f"{pinned['mappers'][name][key]!r} — re-record with "
                "REPRO_RECORD_BENCH=1 if the change is intentional"
            )
