"""Incremental refine kernel at scale: the delta-structure speed claim.

RefineTopoLB3 (TopoLB order-3 base + pairwise-swap refinement) is the
pipeline the paper's quality numbers come from; the ``incremental`` kernel
exists to make its refine phase cheap by carrying per-task best-swap rows
across sweeps and recomputing only the rows a swap dirtied. This bench runs
all three kernels on 3D Jacobi stencils over 8x8x8 and 12x12x12 tori
(warm shared tables, best-of-3 wall times), asserts the three refined
assignments are bit-identical, and enforces the recorded speed claim:
**incremental >= 2x faster than vectorized on the 8^3 instance** (locally
it sits near 5x; 12^3 near 3x). The claim needs the compiled kernel — on
hosts without a C compiler the gate skips and only equivalence plus the
``BENCH_refine_incremental_*.json`` quality pins run. Set
``REPRO_RECORD_BENCH=1`` to re-record after an intentional change.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.mapping import RefineTopoLB, TopoLB, _native
from repro.mapping.context import context_for
from repro.mapping.estimation import EstimatorOrder
from repro.taskgraph import mesh3d_pattern
from repro.topology import Torus

SIDES = (8, 12)
KERNELS = ("reference", "vectorized", "incremental")
#: The recorded claim (8^3 gate): incremental beats vectorized by >= 2x.
MIN_SPEEDUP = 2.0
#: Same shared-runner jitter allowance the kernel smoke bench uses.
NOISE_MARGIN = 1.1

_CASES: dict[int, tuple] = {}


def _case(side: int):
    """(graph, topo, ctx, start) for one torus side, built once per module.

    The start is the order-3 TopoLB placement (RefineTopoLB3's base) and the
    shared distance/CSR tables are warmed, so the timed loop below measures
    exactly one thing: the refine kernel.
    """
    if side not in _CASES:
        graph = mesh3d_pattern(side, side, side, message_bytes=1024)
        topo = Torus((side, side, side))
        ctx = context_for(graph, topo)
        start = TopoLB(order=EstimatorOrder.THIRD).map(graph, topo)
        _CASES[side] = (graph, topo, ctx, start)
    return _CASES[side]


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _artifact(side: int) -> Path:
    return Path(__file__).parent / (
        f"BENCH_refine_incremental_torus{side}x{side}x{side}.json"
    )


@pytest.mark.parametrize("side", SIDES, ids=lambda s: f"torus{s}x{s}x{s}")
def test_incremental_refine_scaling(benchmark, side):
    graph, topo, ctx, start = _case(side)

    timings, mappings = {}, {}
    for kernel in KERNELS:
        refiner = RefineTopoLB(kernel=kernel, seed=1)
        mappings[kernel] = refiner.refine(start, ctx=ctx)
        timings[kernel] = _best_of(lambda: refiner.refine(start, ctx=ctx))
    benchmark.pedantic(
        RefineTopoLB(kernel="incremental", seed=1).refine,
        args=(start,), kwargs={"ctx": ctx}, rounds=1, iterations=1,
    )

    # The speed claim is only worth making about an equivalent kernel.
    for kernel in ("vectorized", "incremental"):
        np.testing.assert_array_equal(
            mappings[kernel].assignment, mappings["reference"].assignment,
            err_msg=f"{kernel} diverged at {side}^3",
        )

    # Sweep/swap counts are deterministic (seeded, bit-identical kernels);
    # record them from an untimed profiled run.
    with obs.profiled() as prof:
        RefineTopoLB(kernel="incremental", seed=1).refine(start, ctx=ctx)
    counters = dict(prof.counters)

    record = {
        "format": "repro-bench-v1",
        "taskgraph": f"mesh3d:{side}x{side}x{side};bytes=1024",
        "topology": f"torus:{side}x{side}x{side}",
        "strategy": "refine:base=topolb,order=3",
        "seed": 1,
        "num_tasks": graph.num_tasks,
        "num_processors": topo.num_nodes,
        "hop_bytes_start": start.hop_bytes,
        "hop_bytes_refined": mappings["reference"].hop_bytes,
        "sweeps": counters["refine.sweeps"],
        "swaps_accepted": counters["refine.swaps_accepted"],
        "native_kernel": _native.available(),
        "ms_reference": round(timings["reference"] * 1e3, 2),
        "ms_vectorized": round(timings["vectorized"] * 1e3, 2),
        "ms_incremental": round(timings["incremental"] * 1e3, 2),
        "speedup_vs_vectorized": round(
            timings["vectorized"] / timings["incremental"], 2),
        "min_speedup_gate": MIN_SPEEDUP if side == 8 else None,
    }
    if os.environ.get("REPRO_RECORD_BENCH"):
        _artifact(side).write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n")

    # Quality/work pins reproduce exactly on any host; wall times and the
    # native flag are informational (they vary with hardware/toolchain).
    pinned = json.loads(_artifact(side).read_text())
    for key in ("num_tasks", "num_processors", "hop_bytes_start",
                "hop_bytes_refined", "sweeps", "swaps_accepted"):
        assert record[key] == pinned[key], (
            f"{key}: got {record[key]!r}, artifact pins {pinned[key]!r} — "
            "re-record with REPRO_RECORD_BENCH=1 if the change is intentional"
        )

    if not _native.available():
        pytest.skip("no C compiler: numpy fallback is correct but not "
                    "subject to the >= 2x speed gate")
    speedup = timings["vectorized"] / timings["incremental"]
    if side == 8:
        assert timings["incremental"] * MIN_SPEEDUP \
            <= timings["vectorized"] * NOISE_MARGIN, (
                f"incremental only {speedup:.2f}x faster than vectorized "
                f"at 8^3 (gate: {MIN_SPEEDUP}x)"
            )
    else:
        # Larger machines must at least never regress past vectorized.
        assert timings["incremental"] <= timings["vectorized"] * NOISE_MARGIN, (
            f"incremental slower than vectorized at {side}^3 "
            f"({speedup:.2f}x)"
        )
