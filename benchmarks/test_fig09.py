"""Benchmark: Figure 9 — completion time of 2000 iterations vs bandwidth."""

from __future__ import annotations

from repro.experiments import fig09


def test_fig09(run_once):
    result = run_once(fig09.run, quick=True)
    print()
    print(result.to_text())

    for row in result.rows:
        # Paper: random can take more than double TopoLB's time when
        # congested; TopoLB beats TopoCentLB everywhere.
        assert row["random_over_topolb"] > 2.0
        assert row["cent_over_topolb"] > 1.0
    # The gap widens as bandwidth shrinks.
    assert result.rows[0]["random_over_topolb"] >= result.rows[-1]["random_over_topolb"] - 0.2
