"""Ablation: deterministic vs adaptive routing and the mapping gap.

EXPERIMENTS.md notes our DOR-only model amplifies the random-vs-TopoLB gap
relative to real BlueGene (which routes adaptively). This bench quantifies
the claim: under adaptive routing the random mapping recovers some latency,
narrowing the gap — while TopoLB (whose traffic is already one-hop) barely
changes.
"""

from __future__ import annotations

import pytest

from repro.mapping import RandomMapper, TopoLB
from repro.netsim import IterativeApplication, NetworkSimulator, RoutingPolicy
from repro.taskgraph import mesh2d_pattern
from repro.topology import Torus


def _latency(mapping, routing, bandwidth=100.0):
    sim = NetworkSimulator(mapping.topology, bandwidth=bandwidth, alpha=0.1,
                           routing=routing)
    app = IterativeApplication(mapping, sim, iterations=15,
                               message_bytes=2048.0, compute_time=1.0)
    return app.run().mean_message_latency


@pytest.mark.parametrize("routing", list(RoutingPolicy), ids=lambda r: r.value)
def test_routing_policy_random_mapping(benchmark, routing):
    topo = Torus((4, 4, 4))
    mapping = RandomMapper(seed=0).map(mesh2d_pattern(8, 8), topo)
    lat = benchmark.pedantic(_latency, args=(mapping, routing),
                             rounds=1, iterations=1)
    print(f"\nrandom mapping, {routing.value}: {lat:.2f}us")


def test_adaptive_narrows_mapping_gap(run_once):
    def measure():
        topo = Torus((4, 4, 4))
        graph = mesh2d_pattern(8, 8)
        rand = RandomMapper(seed=0).map(graph, topo)
        tlb = TopoLB().map(graph, topo)
        gaps = {}
        for routing in RoutingPolicy:
            gaps[routing] = _latency(rand, routing) / _latency(tlb, routing)
        return gaps

    gaps = run_once(measure)
    print(f"\nrandom/TopoLB latency gap: DOR {gaps[RoutingPolicy.DOR]:.2f}x, "
          f"adaptive {gaps[RoutingPolicy.ADAPTIVE]:.2f}x")
    assert gaps[RoutingPolicy.ADAPTIVE] < gaps[RoutingPolicy.DOR]
    assert gaps[RoutingPolicy.ADAPTIVE] > 1.0  # mapping still matters
