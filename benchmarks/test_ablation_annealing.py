"""Ablation: heuristic vs physical optimization (Section 1 / related work).

The paper dismisses annealing-class methods for production use: "Though
physical optimization algorithms produce high-quality solutions (better
than heuristic algorithms), they tend to be very slow." This bench measures
that exact trade on an irregular instance where no heuristic is optimal.
"""

from __future__ import annotations

import time

import pytest

from repro.mapping import SimulatedAnnealingMapper, TopoCentLB, TopoLB
from repro.taskgraph import random_taskgraph
from repro.topology import Torus


@pytest.mark.parametrize("steps", [2_000, 20_000, 100_000])
def test_annealing_step_budget(benchmark, steps):
    topo = Torus((8, 8))
    graph = random_taskgraph(64, edge_prob=0.12, seed=3)
    mapping = benchmark.pedantic(
        SimulatedAnnealingMapper(steps=steps, seed=0).map, args=(graph, topo),
        rounds=1, iterations=1,
    )
    print(f"\nsteps={steps}: hops/byte={mapping.hops_per_byte:.3f}")
    assert mapping.is_bijection()


def test_quality_vs_time_tradeoff(run_once):
    def measure():
        topo = Torus((8, 8))
        graph = random_taskgraph(64, edge_prob=0.12, seed=3)
        out = {}
        for name, mapper in (
            ("TopoCentLB", TopoCentLB()),
            ("TopoLB", TopoLB()),
            ("anneal-100k", SimulatedAnnealingMapper(steps=100_000, seed=0)),
        ):
            t0 = time.perf_counter()
            mapping = mapper.map(graph, topo)
            out[name] = (time.perf_counter() - t0, mapping.hop_bytes)
        return out

    out = run_once(measure)
    for name, (t, hb) in out.items():
        print(f"\n{name}: {t * 1000:.1f}ms, hop-bytes={hb:.4g}")
    # The paper's trade-off, both directions: annealing matches-or-beats the
    # heuristics on quality but pays far more wall-clock than TopoLB.
    assert out["anneal-100k"][1] <= out["TopoLB"][1] * 1.05
    assert out["anneal-100k"][0] > 3 * out["TopoLB"][0]
