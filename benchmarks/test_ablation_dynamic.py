"""Ablation: full remap vs incremental refine in the dynamic LB loop.

The production question the Charm++ framework answers every LB step: pay
migration (PUP + transfer of object state) for a fresh TopoLB placement, or
perturb the current placement minimally? This bench measures the three-way
trade (imbalance, hop-bytes, migration volume) over a drifting workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import DriftingWorkload, run_dynamic_lb
from repro.taskgraph import leanmd_taskgraph
from repro.topology import Torus

BALANCERS = ("incremental", "full:TopoLB", "full:GreedyLB")


@pytest.mark.parametrize("balancer", BALANCERS)
def test_dynamic_balancer(benchmark, balancer):
    base = leanmd_taskgraph(16, cells_shape=(4, 4, 4))
    topo = Torus((4, 4))

    def run():
        wl = DriftingWorkload(base, drift_sigma=0.15, seed=0)
        return run_dynamic_lb(wl, topo, balancer, steps=12, lb_period=4,
                              state_bytes_per_task=4096.0)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    imb = np.mean([r.imbalance for r in reports])
    hb = np.mean([r.hop_bytes for r in reports])
    mig = sum(r.migration_bytes for r in reports)
    print(f"\n{balancer}: avg imbalance={imb:.3f}, avg hop-bytes={hb:.3g}, "
          f"migration={mig / 1e6:.2f}MB")


def test_tradeoff_holds(run_once):
    def measure():
        base = leanmd_taskgraph(16, cells_shape=(4, 4, 4))
        topo = Torus((4, 4))
        out = {}
        for balancer in ("incremental", "full:TopoLB"):
            wl = DriftingWorkload(base, drift_sigma=0.15, seed=0)
            reports = run_dynamic_lb(wl, topo, balancer, steps=12, lb_period=4,
                                     state_bytes_per_task=4096.0)
            out[balancer] = (
                float(np.mean([r.hop_bytes for r in reports])),
                float(sum(r.migration_bytes for r in reports)),
            )
        return out

    out = run_once(measure)
    (inc_hb, inc_mig), (full_hb, full_mig) = out["incremental"], out["full:TopoLB"]
    print(f"\nincremental: HB={inc_hb:.3g} mig={inc_mig / 1e6:.2f}MB | "
          f"full TopoLB: HB={full_hb:.3g} mig={full_mig / 1e6:.2f}MB")
    assert inc_mig < 0.25 * full_mig    # incremental migrates far less
    assert full_hb < inc_hb             # full remap communicates far better
