"""Benchmark: Table 1 — Jacobi 200 iterations, optimal vs random mapping."""

from __future__ import annotations

from repro.experiments import table1


def test_table1(run_once):
    result = run_once(table1.run, quick=True)
    print()
    print(result.to_text())

    ratios = result.column("ratio")
    # Paper shape: ratio grows with message size, exceeds ~2x from 100KB.
    assert all(b >= a - 0.05 for a, b in zip(ratios, ratios[1:]))
    assert all(r > 2.0 for r in ratios[2:])
    assert all(row["optimal_ms"] < row["random_ms"] for row in result.rows)
