"""Kernel micro-benchmark: vectorized vs reference mapper paths.

CI's smoke job runs this to catch a vectorized-kernel performance
regression: the batched kernels exist *only* to be faster, so "vectorized
not slower than reference" is a hard invariant here (with a generous noise
margin — CI boxes are shared and single runs jitter). ``docs/PERFORMANCE.md``
documents the full measurement protocol behind the recorded
``BENCH_kernels_*.json`` artifacts; this file is the cheap sentinel, not
the recorded claim.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.mapping import RefineTopoLB, TopoLB
from repro.mapping.estimation import EstimatorOrder
from repro.taskgraph.random_graphs import geometric_taskgraph
from repro.topology import Torus

#: Allowed vectorized/reference wall-time ratio. Anything under 1.0 means
#: the vectorized path won; the slack only absorbs scheduler noise on the
#: shared CI runner (locally the ratio sits well below 0.5).
NOISE_MARGIN = 1.1

#: Smoke-scale copy of the recorded benchmark config (512 tasks there).
N_TASKS = 128


@pytest.fixture(scope="module")
def instance():
    graph = geometric_taskgraph(N_TASKS, radius=0.2, seed=42)
    topo = Torus((8, 4, 4))
    return graph, topo


def _best_of(fn, repeats: int = 3) -> float:
    """Min wall time over ``repeats`` runs — the standard noise filter for
    micro-benchmarks (the minimum is the least-contended run)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("order", [EstimatorOrder.SECOND, EstimatorOrder.THIRD])
def test_topolb_vectorized_not_slower(benchmark, instance, order):
    graph, topo = instance
    ref = TopoLB(order=order, kernel="reference")
    vec = TopoLB(order=order, kernel="vectorized")
    # Warm the shared topology tables so neither kernel pays them.
    ref_mapping = ref.map(graph, topo)

    t_ref = _best_of(lambda: ref.map(graph, topo))
    t_vec = _best_of(lambda: vec.map(graph, topo))
    # Attach the vectorized run to pytest-benchmark's reporting (works with
    # and without --benchmark-disable).
    vec_mapping = benchmark.pedantic(
        vec.map, args=(graph, topo), rounds=1, iterations=1
    )

    np.testing.assert_array_equal(vec_mapping.assignment, ref_mapping.assignment)
    assert t_vec <= t_ref * NOISE_MARGIN, (
        f"vectorized TopoLB({order.name}) took {t_vec * 1e3:.1f} ms vs "
        f"reference {t_ref * 1e3:.1f} ms"
    )


def test_refine_vectorized_not_slower(benchmark, instance):
    graph, topo = instance
    # Refine a TopoLB placement — how every registered pipeline invokes the
    # refiner. (A random start is swap-dense enough that at smoke scale the
    # block sweep only ties the reference path; the equivalence suite covers
    # that regime for correctness.)
    start = TopoLB().map(graph, topo)
    ref = RefineTopoLB(kernel="reference", seed=1)
    vec = RefineTopoLB(kernel="vectorized", seed=1)
    ref_mapping = ref.refine(start)

    t_ref = _best_of(lambda: ref.refine(start))
    t_vec = _best_of(lambda: vec.refine(start))
    vec_mapping = benchmark.pedantic(
        vec.refine, args=(start,), rounds=1, iterations=1
    )

    np.testing.assert_array_equal(vec_mapping.assignment, ref_mapping.assignment)
    assert t_vec <= t_ref * NOISE_MARGIN, (
        f"vectorized refine took {t_vec * 1e3:.1f} ms vs "
        f"reference {t_ref * 1e3:.1f} ms"
    )
