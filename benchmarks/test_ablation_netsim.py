"""Ablation: network-model choices (cut-through vs store-and-forward, NIC).

The introduction's premise: with wormhole/cut-through routing, *no-load*
latency barely depends on hop count — contention is what distance costs you.
Store-and-forward, by contrast, charges full serialization per hop. This
bench quantifies both regimes and the NIC bottleneck's effect.
"""

from __future__ import annotations

import pytest

from repro.mapping import IdentityMapper, RandomMapper
from repro.netsim import IterativeApplication, LinkModel, NetworkSimulator
from repro.taskgraph import mesh2d_pattern
from repro.topology import Torus


def _mean_latency(mapping, model, bandwidth=500.0, nic=None):
    sim = NetworkSimulator(mapping.topology, bandwidth=bandwidth, alpha=0.1,
                           model=model, nic_bandwidth=nic)
    app = IterativeApplication(mapping, sim, iterations=10,
                               message_bytes=2048.0, compute_time=1.0)
    return app.run().mean_message_latency


@pytest.mark.parametrize("model", list(LinkModel), ids=lambda m: m.value)
def test_link_model_hop_sensitivity(benchmark, model):
    """Per-model latency of a random mapping (the hop-heavy case)."""
    topo = Torus((4, 4, 4))
    graph = mesh2d_pattern(8, 8)
    rand = RandomMapper(seed=0).map(graph, topo)
    lat_rand = benchmark.pedantic(
        _mean_latency, args=(rand, model), rounds=1, iterations=1
    )
    print(f"\n{model.value}: random mapping mean latency {lat_rand:.2f}us")
    assert lat_rand > 0


def test_cut_through_hides_distance_at_no_load(run_once):
    """Uncontended single messages: S&F latency grows ~linearly with hops,
    cut-through only by alpha per hop — the paper's premise."""

    def measure():
        topo = Torus((16,))
        out = {}
        for model in LinkModel:
            lats = []
            for dst in (1, 4, 8):
                sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1, model=model)
                msg = sim.send(0, dst, 1000.0)
                sim.run()
                lats.append(msg.latency)
            out[model] = lats
        return out

    out = run_once(measure)
    ct, sf = out[LinkModel.CUT_THROUGH], out[LinkModel.STORE_AND_FORWARD]
    print(f"\ncut-through 1/4/8 hops: {ct}\nstore-and-forward: {sf}")
    # 8-hop vs 1-hop growth: tiny for cut-through, ~8x for S&F.
    assert ct[2] / ct[0] < 1.2
    assert sf[2] / sf[0] > 5.0


def test_nic_bottleneck_compresses_mapping_gain(run_once):
    """The per-node injection limit caps how much an optimal mapping can
    win on bandwidth alone (why Table 1's ratio plateaus near 2.7)."""

    def measure():
        topo = Torus((4, 4, 4))
        graph = mesh2d_pattern(8, 8)
        from repro.mapping import TopoLB

        rand = RandomMapper(seed=0).map(graph, topo)
        opt = TopoLB().map(graph, topo)
        gains = {}
        for nic in (None, 200.0):
            gains[nic] = (
                _mean_latency(rand, LinkModel.CUT_THROUGH, bandwidth=100.0, nic=nic)
                / _mean_latency(opt, LinkModel.CUT_THROUGH, bandwidth=100.0, nic=nic)
            )
        return gains

    gains = run_once(measure)
    print(f"\nrandom/TopoLB latency ratio: no NIC {gains[None]:.2f}, "
          f"with NIC {gains[200.0]:.2f}")
    assert gains[200.0] < gains[None]
