"""Ablation: how much topology-aware mapping matters per network class.

The paper's introduction: fat-trees and hypercubes (wiring ~ P log P) make
contention/mapping a minor factor; tori and meshes make it dominant. Measure
the random/TopoLB hop-byte ratio per topology class at matched sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import RandomMapper, TopoLB
from repro.taskgraph import mesh2d_pattern
from repro.topology import FatTree, Hypercube, Mesh, Torus

TOPOLOGIES = {
    "torus_8x8": lambda: Torus((8, 8)),
    "mesh_8x8": lambda: Mesh((8, 8)),
    "hypercube_6": lambda: Hypercube(6),
    "fattree_4x3": lambda: FatTree(4, 3),
}


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_mapping_gain_by_topology(benchmark, name):
    topo = TOPOLOGIES[name]()
    graph = mesh2d_pattern(8, 8)

    def measure():
        rand = np.mean([
            RandomMapper(seed=s).map(graph, topo).hops_per_byte for s in range(3)
        ])
        tlb = TopoLB().map(graph, topo).hops_per_byte
        return rand / tlb

    gain = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\n{name}: random/TopoLB hops-per-byte ratio = {gain:.2f}")
    assert gain >= 1.0


def test_grid_gains_dominate_fattree(run_once):
    """The quantitative version of the paper's motivation."""

    def measure():
        graph = mesh2d_pattern(8, 8)
        out = {}
        for name, factory in TOPOLOGIES.items():
            topo = factory()
            rand = np.mean([
                RandomMapper(seed=s).map(graph, topo).hops_per_byte
                for s in range(3)
            ])
            out[name] = rand / TopoLB().map(graph, topo).hops_per_byte
        return out

    gains = run_once(measure)
    print("\n" + "\n".join(f"{k}: {v:.2f}x" for k, v in sorted(gains.items())))
    assert gains["torus_8x8"] > 1.5 * gains["fattree_4x3"]
    assert gains["mesh_8x8"] > 1.5 * gains["fattree_4x3"]
