"""Ablation: how much topology-aware mapping matters per network class.

The paper's introduction: fat-trees and hypercubes (wiring ~ P log P) make
contention/mapping a minor factor; tori and meshes make it dominant. Measure
the random/TopoLB hop-byte ratio per topology class at matched sizes — and,
now that the DES routes over real switch fabrics, the same collapse through
simulated time: the random/TopoLB *makespan* gap on a torus versus a
fat-tree at equal offered load, pinned in
``BENCH_ablation_fattree_des.json`` (re-record with
``REPRO_RECORD_BENCH=1`` after an intentional model change).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.mapping import RandomMapper, TopoLB
from repro.mapping.base import Mapping
from repro.netsim.appsim import IterativeApplication
from repro.netsim.simulator import NetworkSimulator
from repro.taskgraph import mesh2d_pattern
from repro.topology import FatTree, Hypercube, Mesh, Torus

TOPOLOGIES = {
    "torus_8x8": lambda: Torus((8, 8)),
    "mesh_8x8": lambda: Mesh((8, 8)),
    "hypercube_6": lambda: Hypercube(6),
    "fattree_4x3": lambda: FatTree(4, 3),
}


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_mapping_gain_by_topology(benchmark, name):
    topo = TOPOLOGIES[name]()
    graph = mesh2d_pattern(8, 8)

    def measure():
        rand = np.mean([
            RandomMapper(seed=s).map(graph, topo).hops_per_byte for s in range(3)
        ])
        tlb = TopoLB().map(graph, topo).hops_per_byte
        return rand / tlb

    gain = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\n{name}: random/TopoLB hops-per-byte ratio = {gain:.2f}")
    assert gain >= 1.0


def test_grid_gains_dominate_fattree(run_once):
    """The quantitative version of the paper's motivation."""

    def measure():
        graph = mesh2d_pattern(8, 8)
        out = {}
        for name, factory in TOPOLOGIES.items():
            topo = factory()
            rand = np.mean([
                RandomMapper(seed=s).map(graph, topo).hops_per_byte
                for s in range(3)
            ])
            out[name] = rand / TopoLB().map(graph, topo).hops_per_byte
        return out

    gains = run_once(measure)
    print("\n" + "\n".join(f"{k}: {v:.2f}x" for k, v in sorted(gains.items())))
    assert gains["torus_8x8"] > 1.5 * gains["fattree_4x3"]
    assert gains["mesh_8x8"] > 1.5 * gains["fattree_4x3"]


DES_ARTIFACT = Path(__file__).parent / "BENCH_ablation_fattree_des.json"
DES_ITERATIONS = 3
DES_BANDWIDTH = 100.0
DES_MESSAGE_BYTES = 4096.0
DES_RANDOM_SEEDS = (23, 24, 25)


def _des_makespan(mapping) -> float:
    sim = NetworkSimulator(mapping.topology, bandwidth=DES_BANDWIDTH, seed=0)
    app = IterativeApplication(mapping, sim, iterations=DES_ITERATIONS)
    return app.run().total_time


def test_des_gap_collapses_on_fattree(run_once):
    """The motivation claim through *simulated time*, not just the metric.

    Same Jacobi workload, same bandwidth, same seeds: on the torus a random
    placement pays a large contention penalty over TopoLB; on the fat-tree
    the switch fabric absorbs most of it and the makespan gap collapses.
    The event-queue DES is seeded-deterministic, so every makespan is
    pinned exactly in the artifact.
    """
    graph = mesh2d_pattern(8, 8, message_bytes=DES_MESSAGE_BYTES)

    def measure():
        rows = {}
        for name, factory in (("torus_8x8", lambda: Torus((8, 8))),
                              ("fattree_4x3", lambda: FatTree(4, 3))):
            topo = factory()
            topolb = _des_makespan(TopoLB().map(graph, topo))
            randoms = [
                _des_makespan(Mapping(
                    graph, topo,
                    np.random.default_rng(s).permutation(topo.num_nodes),
                ))
                for s in DES_RANDOM_SEEDS
            ]
            random_mean = float(np.mean(randoms))
            rows[name] = {
                "topolb_makespan_us": topolb,
                "random_makespan_us": random_mean,
                "random_makespans_us": randoms,
                "gap": random_mean / topolb,
            }
        return rows

    rows = run_once(measure)
    print("\n" + "\n".join(
        f"{k}: random/TopoLB DES makespan gap = {v['gap']:.2f}x"
        for k, v in sorted(rows.items())
    ))

    # The collapse: contention-driven gap on the torus, mostly gone on the
    # fat-tree's multi-path switch fabric.
    assert rows["torus_8x8"]["gap"] > 2.0 * rows["fattree_4x3"]["gap"]
    assert rows["fattree_4x3"]["gap"] < 3.0

    record = {
        "format": "repro-bench-v1",
        "taskgraph": f"mesh2d:8x8;bytes={DES_MESSAGE_BYTES:g}",
        "iterations": DES_ITERATIONS,
        "bandwidth": DES_BANDWIDTH,
        "random_seeds": list(DES_RANDOM_SEEDS),
        "topologies": rows,
    }
    if os.environ.get("REPRO_RECORD_BENCH"):
        DES_ARTIFACT.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )

    pinned = json.loads(DES_ARTIFACT.read_text())
    for name, row in rows.items():
        for key in ("topolb_makespan_us", "random_makespan_us"):
            assert row[key] == pytest.approx(
                pinned["topologies"][name][key], rel=1e-12
            ), (
                f"{name}.{key}: got {row[key]!r}, artifact pins "
                f"{pinned['topologies'][name][key]!r} — re-record with "
                "REPRO_RECORD_BENCH=1 if the change is intentional"
            )
