"""Flow estimator at machine scale: contention numbers the DES can't reach.

The per-packet DES walks ~660k directed messages hop by hop through an
event queue per iteration — minutes at the 10^5-task scale the multilevel
mapper targets. The flow estimator must evaluate that same instance (48^3
Jacobi stencil multilevel-mapped onto a 16x16x16 torus) in **under one
second** (locally ~30 ms), or the fast ``--netsim-mode flow`` path loses
its reason to exist. Contention results are deterministic and pinned in
``BENCH_netsim_flow_torus16x16x16.json``; re-record with
``REPRO_RECORD_BENCH=1`` after an intentional change.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import mapper_from_spec
from repro.netsim.flow import flow_evaluate
from repro.taskgraph import mesh3d_pattern
from repro.topology import Torus

SIDE = 48  # 110592 tasks, matching the multilevel scale bench
SHAPE = (16, 16, 16)
STRATEGY = "multilevel:inner=topolb;levels=auto"
TIME_BUDGET_S = 1.0
ARTIFACT = Path(__file__).parent / "BENCH_netsim_flow_torus16x16x16.json"


@pytest.fixture(scope="module")
def mapping():
    graph = mesh3d_pattern(SIDE, SIDE, SIDE, message_bytes=1024)
    return mapper_from_spec(STRATEGY, seed=0).map(graph, Torus(SHAPE))


def test_flow_evaluate_large_machine(benchmark, mapping):
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        flow = flow_evaluate(mapping, iterations=4)
        best = min(best, time.perf_counter() - t0)
    benchmark.pedantic(flow_evaluate, args=(mapping,),
                       kwargs={"iterations": 4}, rounds=1, iterations=1)

    assert best < TIME_BUDGET_S, (
        f"flow_evaluate took {best:.2f}s on {mapping.graph.num_tasks} tasks "
        f"/ {mapping.topology.num_nodes} processors (budget {TIME_BUDGET_S}s)"
    )
    # Sanity anchors: conservation against the hop-bytes metric, and a used
    # fraction of the 24576 directed torus links.
    assert flow.total_bytes == pytest.approx(4 * mapping.hop_bytes)
    assert 0 < flow.links_used <= 6 * mapping.topology.num_nodes

    record = {
        "format": "repro-bench-v1",
        "taskgraph": f"mesh3d:{SIDE}x{SIDE}x{SIDE};bytes=1024",
        "topology": "torus:16x16x16",
        "strategy": STRATEGY,
        "seed": 0,
        "iterations": 4,
        "num_tasks": mapping.graph.num_tasks,
        "num_processors": mapping.topology.num_nodes,
        "links_used": flow.links_used,
        "max_link_bytes": flow.max_link_bytes,
        "total_bytes": flow.total_bytes,
        "makespan_lower_bound_us": flow.makespan_lower_bound,
        "elapsed_seconds": round(best, 4),
        "time_budget_seconds": TIME_BUDGET_S,
    }
    if os.environ.get("REPRO_RECORD_BENCH"):
        ARTIFACT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    pinned = json.loads(ARTIFACT.read_text())
    for key in ("num_tasks", "num_processors", "links_used",
                "max_link_bytes", "total_bytes", "makespan_lower_bound_us"):
        assert record[key] == pinned[key], (
            f"{key}: got {record[key]!r}, artifact pins {pinned[key]!r} — "
            "re-record with REPRO_RECORD_BENCH=1 if the change is intentional"
        )
