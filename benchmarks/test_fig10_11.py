"""Benchmark: Figures 10/11 — BlueGene 3D-torus vs 3D-mesh, 100KB messages."""

from __future__ import annotations

from repro.experiments import fig10_11


def test_fig10_11(run_once):
    result = run_once(fig10_11.run, quick=True)
    print()
    print(result.to_text())

    for row in result.rows:
        # Topology-aware mapping beats random on both networks.
        assert row["torus_TopoLB_s"] < row["torus_GreedyLB_s"]
        assert row["mesh_TopoLB_s"] < row["mesh_GreedyLB_s"]
        # Mesh (no wraparound) is slower than torus for random placement.
        assert row["mesh_GreedyLB_s"] > row["torus_GreedyLB_s"]
    # At the largest machine, random's absolute torus->mesh slowdown exceeds
    # TopoLB's (the paper: "the effect is more pronounced for random
    # placement"). Small machines can invert this when the pattern embeds
    # perfectly in the torus (TopoLB itself exploits wraparound heavily
    # there), so the claim is checked where the paper makes it — at scale.
    big = result.rows[-1]
    random_gap = big["mesh_GreedyLB_s"] - big["torus_GreedyLB_s"]
    topolb_gap = big["mesh_TopoLB_s"] - big["torus_TopoLB_s"]
    assert random_gap > topolb_gap
