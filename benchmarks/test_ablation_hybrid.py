"""Ablation: HybridTopoLB (the paper's future-work scheme) vs flat TopoLB.

Trades a little hop-byte quality for much smaller per-instance problem
sizes: each TopoLB call sees B or p/B nodes instead of p. This bench
measures both sides of the trade on a machine where the flat mapper's cost
is already noticeable.
"""

from __future__ import annotations

import time

import pytest

from repro.mapping import HybridTopoLB, RandomMapper, TopoLB
from repro.taskgraph import mesh2d_pattern
from repro.topology import Torus


@pytest.mark.parametrize("blocks", [4, 16])
def test_hybrid_block_count(benchmark, blocks):
    topo = Torus((16, 16))
    graph = mesh2d_pattern(16, 16)
    mapping = benchmark.pedantic(
        HybridTopoLB(num_blocks=blocks, seed=0).map, args=(graph, topo),
        rounds=1, iterations=1,
    )
    print(f"\nblocks={blocks}: hops/byte={mapping.hops_per_byte:.3f}")
    assert mapping.is_bijection()


def test_hybrid_vs_flat_tradeoff(run_once):
    def measure():
        topo = Torus((24, 24))
        graph = mesh2d_pattern(24, 24)
        out = {}
        for name, mapper in (
            ("flat TopoLB", TopoLB()),
            ("hybrid B=16", HybridTopoLB(num_blocks=16, seed=0)),
        ):
            t0 = time.perf_counter()
            mapping = mapper.map(graph, topo)
            out[name] = (time.perf_counter() - t0, mapping.hops_per_byte)
        out["random"] = (0.0, RandomMapper(seed=0).map(graph, topo).hops_per_byte)
        return out

    out = run_once(measure)
    for name, (t, hpb) in out.items():
        print(f"\n{name}: {t:.2f}s, hops/byte={hpb:.3f}")
    flat_t, flat_q = out["flat TopoLB"]
    hyb_t, hyb_q = out["hybrid B=16"]
    _, rand_q = out["random"]
    # Quality: hybrid sits between flat TopoLB and random, far from random.
    assert flat_q <= hyb_q < 0.5 * rand_q
