"""Ablation: TopoLB estimator order (Section 4.3/4.4 trade-off).

The paper ships the second-order estimator because the third-order variant
costs O(p^3) for marginal quality. This bench reproduces that trade-off:
quality (hops/byte) and wall-clock for all three orders on the same
instances.
"""

from __future__ import annotations

import time

import pytest

from repro.mapping import EstimatorOrder, TopoLB
from repro.taskgraph import mesh2d_pattern, random_taskgraph
from repro.topology import Torus


@pytest.mark.parametrize("order", [1, 2, 3], ids=["first", "second", "third"])
def test_estimator_order_quality_and_cost(benchmark, order):
    topo = Torus((12, 12))
    graph = mesh2d_pattern(12, 12)
    mapper = TopoLB(order=order)
    mapping = benchmark.pedantic(
        mapper.map, args=(graph, topo), rounds=1, iterations=1
    )
    print(f"\norder={order}: hops/byte={mapping.hops_per_byte:.3f}")
    assert mapping.is_bijection()
    assert mapping.hops_per_byte < 3.0


def test_second_order_cheaper_than_third(run_once):
    """The O(p|Et|) vs O(p^3) gap, measured."""

    def compare():
        topo = Torus((14, 14))
        graph = random_taskgraph(196, edge_prob=0.03, seed=0)
        out = {}
        for order in (EstimatorOrder.SECOND, EstimatorOrder.THIRD):
            t0 = time.perf_counter()
            mapping = TopoLB(order=order).map(graph, topo)
            out[order] = (time.perf_counter() - t0, mapping.hops_per_byte)
        return out

    out = run_once(compare)
    t2, q2 = out[EstimatorOrder.SECOND]
    t3, q3 = out[EstimatorOrder.THIRD]
    print(f"\nsecond: {t2:.3f}s hpb={q2:.3f} | third: {t3:.3f}s hpb={q3:.3f}")
    assert t2 < t3  # the paper's scaling argument
