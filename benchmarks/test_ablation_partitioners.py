"""Ablation: phase-1 partitioner choice (multilevel vs spectral vs greedy).

The paper is agnostic about the phase-1 partitioner ("any partitioning
algorithm can be used ... a method that reduces intergroup communication
must be preferred"). This bench quantifies how much the choice matters:
cut bytes, balance, wall-clock — and how the downstream mapping quality
(group hops-per-byte after TopoLB) responds.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.mapping import TopoLB
from repro.partition import (
    GreedyPartitioner,
    MultilevelPartitioner,
    SpectralPartitioner,
    edge_cut_bytes,
    partition_imbalance,
)
from repro.taskgraph import coalesce, leanmd_taskgraph
from repro.topology import Torus

PARTITIONERS = {
    "greedy": lambda: GreedyPartitioner(),
    "multilevel": lambda: MultilevelPartitioner(seed=0),
    "spectral": lambda: SpectralPartitioner(seed=0),
}


@pytest.mark.parametrize("name", sorted(PARTITIONERS))
def test_partitioner_on_leanmd(benchmark, name):
    p = 32
    graph = leanmd_taskgraph(p, cells_shape=(4, 4, 4))
    part = PARTITIONERS[name]()
    groups = benchmark.pedantic(part.partition, args=(graph, p),
                                rounds=1, iterations=1)
    cut = edge_cut_bytes(graph, groups)
    imb = partition_imbalance(graph, np.asarray(groups), p)
    print(f"\n{name}: cut={cut:.3g} bytes, imbalance={imb:.3f}")


def test_partition_quality_flows_into_mapping(run_once):
    def measure():
        p = 32
        topo = Torus((4, 8))
        graph = leanmd_taskgraph(p, cells_shape=(4, 4, 4))
        out = {}
        for name, factory in PARTITIONERS.items():
            t0 = time.perf_counter()
            groups = np.asarray(factory().partition(graph, p))
            elapsed = time.perf_counter() - t0
            quotient = coalesce(graph, groups, p)
            hpb = TopoLB().map(quotient, topo).hops_per_byte
            out[name] = (elapsed, edge_cut_bytes(graph, groups), hpb)
        return out

    out = run_once(measure)
    print()
    for name, (t, cut, hpb) in out.items():
        print(f"{name}: {t:.2f}s, cut={cut:.3g}, group hops/byte={hpb:.3f}")
    # Comm-aware partitioners must cut far less than the load-only greedy;
    # cut bytes are the traffic the mapper then has to place.
    assert out["multilevel"][1] < out["greedy"][1]
    assert out["spectral"][1] < out["greedy"][1]
